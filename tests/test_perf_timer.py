"""PerfRecorder: phase timing, aggregation, and the global on/off switch."""

import json

import pytest

from repro import perf
from repro.perf.timer import PerfRecorder, Timer


@pytest.fixture(autouse=True)
def _reset_global_recorder():
    """Tests must not leak an enabled recorder into the rest of the suite."""
    yield
    perf.disable()


class TestPerfRecorder:
    def test_phase_records_elapsed_seconds(self):
        rec = PerfRecorder()
        with rec.phase("harvest", entity="e1") as timer:
            _ = sum(range(1000))
        assert timer.elapsed >= 0.0
        assert rec.count("harvest") == 1
        assert rec.total("harvest") == pytest.approx(timer.elapsed)
        assert rec.samples_for("harvest")[0].meta_dict() == {"entity": "e1"}

    def test_record_and_aggregates(self):
        rec = PerfRecorder()
        rec.record("selection", 0.25, method="L2QP")
        rec.record("selection", 0.75, method="L2QR")
        rec.record("fetch", 1.0)
        assert rec.count("selection") == 2
        assert rec.total("selection") == pytest.approx(1.0)
        assert rec.mean("selection") == pytest.approx(0.5)
        assert rec.mean("missing") == 0.0
        assert rec.phases() == ["fetch", "selection"]

    def test_record_aggregate_weights_count(self):
        rec = PerfRecorder()
        rec.record("selection", 0.2)
        rec.record_aggregate("selection", 0.8, 4, worker_pid=123)
        assert rec.count("selection") == 5
        assert rec.total("selection") == pytest.approx(1.0)
        assert rec.mean("selection") == pytest.approx(0.2)
        # Zero-occurrence aggregates record nothing.
        rec.record_aggregate("noop", 1.0, 0)
        assert rec.count("noop") == 0

    def test_mark_and_aggregates_since_round_trip(self):
        worker = PerfRecorder()
        worker.record("split-prepare", 1.0)
        mark = worker.mark()
        worker.record("harvest", 0.5)
        worker.record("selection", 0.25)
        worker.record("selection", 0.75)
        shipped = worker.aggregates_since(mark)
        assert shipped == {
            "harvest": {"count": 1, "total_seconds": 0.5},
            "selection": {"count": 2, "total_seconds": pytest.approx(1.0)},
        }
        home = PerfRecorder()
        home.record_aggregates(shipped, worker_pid=7)
        assert home.count("selection") == 2
        assert home.mean("selection") == pytest.approx(0.5)
        assert home.count("split-prepare") == 0  # before the mark
        assert home.samples_for("harvest")[0].meta_dict() == {"worker_pid": 7}

    def test_as_dict_and_write_round_trip(self, tmp_path):
        rec = PerfRecorder()
        rec.record("sweep-cell", 2.0, domain="car")
        path = rec.write(tmp_path / "perf.json")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == rec.as_dict()
        assert loaded["phases"]["sweep-cell"]["count"] == 1
        assert loaded["phases"]["sweep-cell"]["total_seconds"] == pytest.approx(2.0)

    def test_clear(self):
        rec = PerfRecorder()
        rec.record("x", 1.0)
        rec.clear()
        assert rec.samples == []

    def test_standalone_timer_measures_without_recorder(self):
        with Timer(None, "anything") as timer:
            _ = sum(range(100))
        assert timer.elapsed >= 0.0


class TestGlobalSwitch:
    def test_disabled_by_default_returns_none(self):
        perf.disable()
        assert perf.recorder() is None
        assert not perf.is_enabled()

    def test_enable_installs_and_collects(self):
        rec = perf.enable()
        assert perf.recorder() is rec
        assert perf.is_enabled()
        with perf.recorder().phase("split-prepare"):
            pass
        assert rec.count("split-prepare") == 1

    def test_enable_accepts_existing_recorder(self):
        mine = PerfRecorder()
        assert perf.enable(mine) is mine
        assert perf.recorder() is mine

    def test_instrumented_harvest_records_phases(self, researcher_runner,
                                                 researcher_prepared):
        rec = perf.enable()
        researcher_runner.harvest_once(researcher_prepared, "RND",
                                       researcher_prepared.split.test_entities[0],
                                       "RESEARCH", 2)
        assert rec.count("harvest") == 1
        assert rec.count("selection") >= 1
        perf.disable()

    def test_disabled_harvest_records_nothing(self, researcher_runner,
                                              researcher_prepared):
        rec = perf.enable()
        perf.disable()
        researcher_runner.harvest_once(researcher_prepared, "RND",
                                       researcher_prepared.split.test_entities[0],
                                       "RESEARCH", 2)
        assert rec.samples == []
