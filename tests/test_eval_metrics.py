"""Tests for evaluation metrics and ideal-normalisation."""

import pytest

from repro.eval.metrics import (
    HarvestMetrics,
    MetricSeries,
    average_f_score,
    average_metrics,
    compute_metrics,
    relative_improvement,
)


class TestComputeMetrics:
    def test_perfect_harvest(self):
        metrics = compute_metrics(["a", "b"], ["a", "b"])
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f_score == 1.0

    def test_partial_harvest(self):
        metrics = compute_metrics(["a", "b", "c", "d"], ["a", "b", "x"])
        assert metrics.precision == pytest.approx(0.5)
        assert metrics.recall == pytest.approx(2 / 3)
        assert metrics.f_score == pytest.approx(2 * 0.5 * (2 / 3) / (0.5 + 2 / 3))

    def test_empty_gathered(self):
        metrics = compute_metrics([], ["a"])
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f_score == 0.0

    def test_no_relevant_pages(self):
        metrics = compute_metrics(["a"], [])
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0

    def test_duplicates_ignored(self):
        metrics = compute_metrics(["a", "a", "b"], ["a"])
        assert metrics.precision == pytest.approx(0.5)


class TestNormalisation:
    def test_ratio_against_ideal(self):
        metrics = HarvestMetrics(precision=0.4, recall=0.3)
        ideal = HarvestMetrics(precision=0.8, recall=0.6)
        normalised = metrics.normalized_by(ideal)
        assert normalised.precision == pytest.approx(0.5)
        assert normalised.recall == pytest.approx(0.5)

    def test_capped_at_one_by_default(self):
        metrics = HarvestMetrics(precision=0.9, recall=0.9)
        ideal = HarvestMetrics(precision=0.6, recall=0.6)
        normalised = metrics.normalized_by(ideal)
        assert normalised.precision == 1.0

    def test_cap_disabled(self):
        metrics = HarvestMetrics(precision=0.9, recall=0.9)
        ideal = HarvestMetrics(precision=0.6, recall=0.6)
        normalised = metrics.normalized_by(ideal, cap=None)
        assert normalised.precision == pytest.approx(1.5)

    def test_zero_ideal_defined(self):
        metrics = HarvestMetrics(precision=0.0, recall=0.0)
        ideal = HarvestMetrics(precision=0.0, recall=0.0)
        normalised = metrics.normalized_by(ideal)
        assert normalised.precision == 1.0
        assert normalised.recall == 1.0


class TestAverages:
    def test_average_metrics(self):
        metrics = [HarvestMetrics(0.2, 0.4), HarvestMetrics(0.6, 0.8)]
        averaged = average_metrics(metrics)
        assert averaged.precision == pytest.approx(0.4)
        assert averaged.recall == pytest.approx(0.6)

    def test_average_metrics_empty(self):
        averaged = average_metrics([])
        assert averaged.precision == 0.0

    def test_average_f_score(self):
        metrics = [HarvestMetrics(1.0, 1.0), HarvestMetrics(0.0, 0.0)]
        assert average_f_score(metrics) == pytest.approx(0.5)

    def test_average_f_score_empty(self):
        assert average_f_score([]) == 0.0


class TestMetricSeries:
    def _series(self):
        return MetricSeries(
            method="L2QBAL",
            precision={2: 0.5, 3: 0.6},
            recall={2: 0.7, 3: 0.8},
            f_score={2: 0.58, 3: 0.68},
        )

    def test_budgets_sorted(self):
        assert self._series().budgets() == [2, 3]

    def test_means(self):
        series = self._series()
        assert series.mean_precision() == pytest.approx(0.55)
        assert series.mean_recall() == pytest.approx(0.75)
        assert series.mean_f_score() == pytest.approx(0.63)


class TestRelativeImprovement:
    def test_positive_improvement(self):
        assert relative_improvement(0.58, 0.5) == pytest.approx(0.16)

    def test_zero_reference(self):
        assert relative_improvement(0.5, 0.0) == 0.0
