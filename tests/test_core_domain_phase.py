"""Tests for the domain phase (Sect. IV-B)."""

import pytest

from repro.aspects.relevance import OracleRelevance
from repro.core.config import L2QConfig
from repro.core.domain_phase import DomainPhase, learn_domain_models
from repro.core.templates import is_type_unit


@pytest.fixture(scope="module")
def domain_model(researcher_corpus):
    domain_corpus = researcher_corpus.subset(researcher_corpus.entity_ids()[:8])
    phase = DomainPhase(domain_corpus, L2QConfig())
    return phase.learn("RESEARCH", OracleRelevance("RESEARCH"))


class TestDomainModel:
    def test_records_domain_size(self, domain_model):
        assert domain_model.num_domain_entities == 8
        assert domain_model.num_domain_pages == 8 * 10
        assert not domain_model.is_empty()

    def test_learns_template_utilities(self, domain_model):
        assert domain_model.template_precision
        assert domain_model.template_recall
        assert domain_model.template_recall_all
        assert all(v >= 0 for v in domain_model.template_precision.values())

    def test_templates_contain_type_units(self, domain_model):
        assert any(any(is_type_unit(u) for u in t) for t in domain_model.template_precision)

    def test_topic_templates_precise_for_research(self, domain_model):
        # Templates built on the <topic> type should rank above templates
        # built on the <location> type for the RESEARCH aspect.
        def best(type_name):
            values = [v for t, v in domain_model.template_precision.items()
                      if f"<{type_name}>" in t]
            return max(values) if values else 0.0
        assert best("topic") > best("location")

    def test_query_utilities_cover_frequent_queries(self, domain_model):
        for query in domain_model.frequent_queries[:20]:
            assert query in domain_model.query_precision
            assert query in domain_model.query_recall

    def test_frequent_queries_meet_support_threshold(self, domain_model):
        config = L2QConfig()
        threshold = config.domain_support_threshold(domain_model.num_domain_entities)
        for query in domain_model.frequent_queries:
            assert domain_model.query_entity_support[query] >= threshold

    def test_best_query_rankings_sorted(self, domain_model):
        ranked = domain_model.best_queries_by_precision(limit=10)
        utilities = [domain_model.query_precision[q] for q in ranked]
        assert utilities == sorted(utilities, reverse=True)
        ranked_recall = domain_model.best_queries_by_recall(limit=10)
        recalls = [domain_model.query_recall[q] for q in ranked_recall]
        assert recalls == sorted(recalls, reverse=True)


class TestEmptyDomain:
    def test_zero_domain_entities(self, researcher_corpus):
        empty_corpus = researcher_corpus.subset([])
        phase = DomainPhase(empty_corpus, L2QConfig())
        model = phase.learn("RESEARCH", OracleRelevance("RESEARCH"))
        assert model.is_empty()
        assert model.frequent_queries == []
        assert model.best_queries_by_precision() == []


class TestLearnDomainModels:
    def test_one_model_per_aspect(self, researcher_corpus):
        domain_corpus = researcher_corpus.subset(researcher_corpus.entity_ids()[:4])
        relevance = {aspect: OracleRelevance(aspect)
                     for aspect in researcher_corpus.aspects[:2]}
        models = learn_domain_models(domain_corpus, relevance, L2QConfig())
        assert set(models) == set(relevance)
        for aspect, model in models.items():
            assert model.aspect == aspect
