"""Tests for the inverted index."""

import pytest

from repro.search.index import InvertedIndex


@pytest.fixture()
def index():
    return InvertedIndex.from_documents({
        "d1": ["parallel", "hpc", "research", "parallel"],
        "d2": ["data", "mining", "research"],
        "d3": ["hpc", "systems"],
    })


class TestConstruction:
    def test_document_count(self, index):
        assert index.num_documents == 3

    def test_total_tokens(self, index):
        assert index.total_tokens == 9

    def test_average_document_length(self, index):
        assert index.average_document_length == pytest.approx(3.0)

    def test_duplicate_document_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document("d1", ["x"])

    def test_contains(self, index):
        assert "d1" in index
        assert "missing" not in index

    def test_empty_index(self):
        empty = InvertedIndex()
        assert empty.num_documents == 0
        assert empty.average_document_length == 0.0
        assert empty.collection_probability("x") == 0.0


class TestTermStatistics:
    def test_term_frequency(self, index):
        assert index.term_frequency("parallel", "d1") == 2
        assert index.term_frequency("parallel", "d2") == 0

    def test_document_frequency(self, index):
        assert index.document_frequency("research") == 2
        assert index.document_frequency("missing") == 0

    def test_collection_frequency(self, index):
        assert index.collection_frequency("parallel") == 2
        assert index.collection_frequency("hpc") == 2

    def test_collection_probability_sums_to_one(self, index):
        total = sum(index.collection_probability(t) for t in index.vocabulary())
        assert total == pytest.approx(1.0)

    def test_postings_copy(self, index):
        postings = index.postings("hpc")
        assert postings == {"d1": 1, "d3": 1}
        postings["d9"] = 5
        assert "d9" not in index.postings("hpc")

    def test_document_length(self, index):
        assert index.document_length("d1") == 4
        with pytest.raises(KeyError):
            index.document_length("missing")


class TestMatchingDocuments:
    def test_any_match(self, index):
        assert index.matching_documents(["hpc", "data"]) == {"d1", "d2", "d3"}

    def test_all_match(self, index):
        assert index.matching_documents(["hpc", "research"], require_all=True) == {"d1"}

    def test_empty_terms(self, index):
        assert index.matching_documents([]) == set()

    def test_unknown_term(self, index):
        assert index.matching_documents(["zzz"]) == set()
