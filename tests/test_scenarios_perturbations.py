"""Tests for the corpus perturbations behind the scenario subsystem."""

import pytest

from repro.corpus.domains import get_domain
from repro.corpus.synthetic import CorpusConfig, CorpusGenerator, build_corpus
from repro.scenarios import (
    AspectSignalDropout,
    CrossDomainVocabulary,
    DistractorEntities,
    DomainMixtureParagraphs,
    NearDuplicateInjection,
    ZipfPageSkew,
)
from repro.scenarios.perturbations import _foreign_word_pool
from repro.utils.rng import SeededRandom


@pytest.fixture(scope="module")
def base():
    """A small clean corpus plus its raw (entities, pages) maps."""
    corpus = build_corpus("researcher", num_entities=10, pages_per_entity=8, seed=5)
    return corpus, dict(corpus.entities), dict(corpus.pages)


def _apply(perturbation, base, seed=13):
    corpus, entities, pages = base
    return perturbation.apply(entities, pages, corpus.domain_spec,
                              SeededRandom(seed))


class TestDeterminism:
    @pytest.mark.parametrize("perturbation", [
        ZipfPageSkew(),
        NearDuplicateInjection(),
        CrossDomainVocabulary(),
        DistractorEntities(),
        AspectSignalDropout(),
        DomainMixtureParagraphs(),
    ], ids=lambda p: p.name)
    def test_same_rng_seed_same_output(self, perturbation, base):
        entities_a, pages_a = _apply(perturbation, base, seed=21)
        entities_b, pages_b = _apply(perturbation, base, seed=21)
        assert entities_a == entities_b
        assert pages_a == pages_b

    def test_input_maps_never_mutated(self, base):
        corpus, entities, pages = base
        before_entities, before_pages = dict(entities), dict(pages)
        for perturbation in (ZipfPageSkew(), NearDuplicateInjection(),
                             DistractorEntities(), AspectSignalDropout()):
            perturbation.apply(entities, pages, corpus.domain_spec,
                               SeededRandom(3))
        assert entities == before_entities
        assert pages == before_pages


class TestZipfPageSkew:
    def test_skews_and_respects_min_pages(self, base):
        _, pages = _apply(ZipfPageSkew(exponent=1.2, min_pages=2), base)
        per_entity = {}
        for page in pages.values():
            per_entity[page.entity_id] = per_entity.get(page.entity_id, 0) + 1
        counts = sorted(per_entity.values())
        assert len(per_entity) == 10       # no entity dropped entirely
        assert counts[0] >= 2              # min_pages floor holds
        assert counts[0] < counts[-1]      # head keeps more than tail
        assert sum(counts) < 10 * 8        # pages were actually removed

    def test_invalid_parameters_rejected_at_construction(self):
        # Fail fast: a bad severity must not survive until mid-sweep.
        with pytest.raises(ValueError, match="exponent"):
            ZipfPageSkew(exponent=-1.0)
        with pytest.raises(ValueError, match="min_pages"):
            ZipfPageSkew(min_pages=0)
        with pytest.raises(ValueError, match="fraction"):
            NearDuplicateInjection(fraction=2.0)
        with pytest.raises(ValueError, match="min_words"):
            CrossDomainVocabulary(min_words=3, max_words=2)
        with pytest.raises(ValueError, match="mislabel"):
            DistractorEntities(mislabel_probability=-0.1)
        with pytest.raises(ValueError, match="dropout"):
            AspectSignalDropout(dropout=1.5)
        with pytest.raises(ValueError, match="page_fraction"):
            DomainMixtureParagraphs(page_fraction=-0.2)


class TestNearDuplicateInjection:
    def test_injects_labelled_near_copies(self, base):
        corpus, _, original_pages = base
        _, pages = _apply(NearDuplicateInjection(fraction=0.5, token_noise=0.1), base)
        duplicates = {pid: page for pid, page in pages.items()
                      if pid not in original_pages}
        assert duplicates
        for dup_id, dup in duplicates.items():
            source = pages[dup_id.rsplit("_dup", 1)[0]]
            assert dup.entity_id == source.entity_id
            # Labels are copied: a duplicate of a relevant page is relevant.
            assert [p.aspect for p in dup.paragraphs] == \
                [p.aspect for p in source.paragraphs]
            # Near- not exact-duplicate: token counts match, most tokens shared.
            assert len(dup.tokens) == len(source.tokens)
            shared = sum(1 for a, b in zip(dup.tokens, source.tokens) if a == b)
            assert shared >= 0.5 * len(source.tokens)
        # Paragraph ids stay globally unique.
        paragraph_ids = [p.paragraph_id for page in pages.values()
                         for p in page.paragraphs]
        assert len(paragraph_ids) == len(set(paragraph_ids))


class TestCrossDomainVocabulary:
    def test_foreign_words_appear(self, base):
        corpus, _, original_pages = base
        _, pages = _apply(CrossDomainVocabulary(rate=0.8), base)
        foreign = set(_foreign_word_pool(get_domain("car")))
        injected = 0
        for pid, page in pages.items():
            extra = len(page.tokens) - len(original_pages[pid].tokens)
            assert extra >= 0
            injected += extra
            assert set(page.tokens) - set(original_pages[pid].tokens) <= foreign
        assert injected > 0


class TestDistractorEntities:
    def test_distractors_shadow_real_names(self, base):
        corpus, original_entities, original_pages = base
        entities, pages = _apply(
            DistractorEntities(fraction=0.3, pages_per_distractor=3), base)
        added = {eid: e for eid, e in entities.items()
                 if eid not in original_entities}
        assert len(added) == 3  # round(0.3 * 10)
        real_names = {e.name_tokens for e in original_entities.values()}
        for eid, distractor in added.items():
            assert distractor.name_tokens in real_names  # shadows a victim
            assert distractor.seed_query != distractor.name_tokens
            distractor_pages = [p for p in pages.values() if p.entity_id == eid]
            assert len(distractor_pages) == 3
            for page in distractor_pages:
                # Every distractor paragraph mentions the shadowed name.
                for paragraph in page.paragraphs:
                    assert paragraph.tokens[:len(distractor.name_tokens)] == \
                        distractor.name_tokens
        assert set(original_pages) <= set(pages)  # real pages untouched


class TestAspectSignalDropout:
    def test_labels_kept_signal_stripped(self, base):
        corpus, _, original_pages = base
        _, pages = _apply(AspectSignalDropout(dropout=1.0, attribute_noise=0.0), base)
        signature = {a.name: set(a.signature_words)
                     for a in corpus.domain_spec.aspects}
        changed = 0
        for pid, page in pages.items():
            original = original_pages[pid]
            assert [p.aspect for p in page.paragraphs] == \
                [p.aspect for p in original.paragraphs]
            for paragraph in page.paragraphs:
                if paragraph.aspect is None:
                    continue
                assert not set(paragraph.tokens) & signature[paragraph.aspect]
                assert paragraph.tokens  # never emptied outright
            if page.tokens != original.tokens:
                changed += 1
        assert changed > 0


class TestDomainMixtureParagraphs:
    def test_appends_unlabelled_foreign_paragraphs(self, base):
        corpus, _, original_pages = base
        _, pages = _apply(DomainMixtureParagraphs(page_fraction=0.8), base)
        mixed = 0
        for pid, page in pages.items():
            original = original_pages[pid]
            assert page.paragraphs[:len(original.paragraphs)] == original.paragraphs
            extra = page.paragraphs[len(original.paragraphs):]
            if extra:
                mixed += 1
                for paragraph in extra:
                    assert paragraph.aspect is None
                    assert paragraph.tokens
        assert mixed > 0


class TestGeneratorPipeline:
    def test_pipeline_runs_inside_generator(self):
        config = CorpusConfig(domain="researcher", num_entities=8,
                              pages_per_entity=6, seed=9,
                              perturbations=(ZipfPageSkew(exponent=1.0),
                                             NearDuplicateInjection(fraction=0.5)))
        corpus = CorpusGenerator(config).generate()
        clean = build_corpus("researcher", num_entities=8, pages_per_entity=6, seed=9)
        assert corpus.content_digest() != clean.content_digest()
        assert any(pid.count("_dup") for pid in corpus.pages)

    def test_invalid_perturbation_rejected_by_validate(self):
        config = CorpusConfig(perturbations=("not-a-perturbation",))
        with pytest.raises(ValueError, match="perturbation"):
            config.validate()

    def test_pipeline_order_changes_output(self):
        stages = (ZipfPageSkew(exponent=0.8), NearDuplicateInjection(fraction=0.4))
        forward = CorpusGenerator(CorpusConfig(
            domain="researcher", num_entities=8, pages_per_entity=6, seed=9,
            perturbations=stages)).generate()
        reversed_ = CorpusGenerator(CorpusConfig(
            domain="researcher", num_entities=8, pages_per_entity=6, seed=9,
            perturbations=stages[::-1])).generate()
        assert forward.content_digest() != reversed_.content_digest()
