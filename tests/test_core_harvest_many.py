"""Tests for batched harvesting (``Harvester.harvest_many``).

The acceptance bar of the refactor: ``workers=4`` must reproduce
``workers=1`` bit-for-bit (fired queries, result pages, new pages and seed
pages; wall-clock timings naturally differ), and selection must run
entirely off the session's incremental candidate statistics — no full
re-enumeration of the working set inside ``select()``.
"""

import pytest

from repro.baselines.manual import ManualQuerySelection
from repro.core.queries import QueryEnumerator

from tests.helpers import harvest_signature as _signature


def _jobs(runner, prepared, methods, num_queries=2):
    entities = list(prepared.split.test_entities)[:2]
    return [runner.build_job(prepared, method, entity_id, "RESEARCH", num_queries)
            for method in methods
            for entity_id in entities]


class TestDeterminism:
    @pytest.mark.parametrize("methods", [("L2QBAL", "RND"), ("LM", "HR")])
    def test_workers_4_reproduces_workers_1(self, researcher_runner,
                                            researcher_prepared, methods):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        serial = harvester.harvest_many(
            _jobs(researcher_runner, researcher_prepared, methods), workers=1)
        parallel = harvester.harvest_many(
            _jobs(researcher_runner, researcher_prepared, methods), workers=4)
        assert [_signature(r) for r in serial] == [_signature(r) for r in parallel]

    def test_results_in_job_order(self, researcher_runner, researcher_prepared):
        jobs = _jobs(researcher_runner, researcher_prepared, ("RND", "MQ"))
        harvester = researcher_runner.harvester_for(researcher_prepared)
        results = harvester.harvest_many(jobs, workers=3)
        assert [(r.entity_id, r.selector_name) for r in results] == \
            [(j.entity_id, j.selector.name) for j in jobs]

    def test_evaluate_methods_identical_across_worker_counts(self, researcher_corpus):
        from repro.eval.runner import ExperimentRunner

        def run(workers):
            runner = ExperimentRunner(researcher_corpus, base_seed=5, workers=workers)
            return runner.evaluate_methods(("RND", "MQ"), num_queries_list=(2,),
                                           max_test_entities=2,
                                           aspects=("RESEARCH",))

        serial, parallel = run(1), run(4)
        for method in ("RND", "MQ"):
            assert serial[method].precision == parallel[method].precision
            assert serial[method].recall == parallel[method].recall
            assert serial[method].f_score == parallel[method].f_score


class TestValidation:
    def test_zero_workers_rejected(self, researcher_runner, researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        with pytest.raises(ValueError):
            harvester.harvest_many([], workers=0)

    def test_empty_batch(self, researcher_runner, researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        assert harvester.harvest_many([], workers=4) == []

    def test_runner_rejects_zero_workers(self, researcher_corpus):
        from repro.eval.runner import ExperimentRunner
        with pytest.raises(ValueError):
            ExperimentRunner(researcher_corpus, workers=0)


class TestSelectionHotPath:
    def test_select_never_reenumerates_working_set(self, researcher_runner,
                                                   researcher_prepared, monkeypatch):
        """`select()` must run off the incremental statistics: a full
        re-enumeration of the gathered pages would defeat the amortisation,
        so it is banned from the hot path for every strategy."""

        def _forbidden(self, pages):
            raise AssertionError(
                "enumerate_from_pages called inside a select() hot path")

        harvester = researcher_runner.harvester_for(researcher_prepared)
        jobs = _jobs(researcher_runner, researcher_prepared,
                     ("RND", "P", "R+t", "L2QBAL", "LM", "AQ", "HR", "MQ"),
                     num_queries=2)
        monkeypatch.setattr(QueryEnumerator, "enumerate_from_pages", _forbidden)
        results = harvester.harvest_many(jobs)
        assert len(results) == len(jobs)


class TestHarvestJob:
    def test_harvest_job_equivalent_to_harvest(self, researcher_runner,
                                               researcher_prepared):
        entity_id = researcher_prepared.split.test_entities[0]
        job = researcher_runner.build_job(researcher_prepared, "MQ", entity_id,
                                          "RESEARCH", 2)
        harvester = researcher_runner.harvester_for(researcher_prepared)
        via_job = harvester.harvest_job(job)
        via_harvest = harvester.harvest(
            entity_id=entity_id, aspect="RESEARCH",
            selector=ManualQuerySelection(researcher_prepared.corpus.domain_spec),
            relevance=job.relevance, num_queries=2,
            domain_model=job.domain_model, seed=job.seed)
        assert _signature(via_job) == _signature(via_harvest)
