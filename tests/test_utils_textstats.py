"""Tests for the text-statistics helpers."""

import pytest

from repro.utils.textstats import (
    average_length,
    document_frequencies,
    jaccard,
    ngrams,
    term_frequencies,
    vocabulary_size,
)


class TestTermFrequencies:
    def test_counts(self):
        assert term_frequencies(["a", "b", "a"]) == {"a": 2, "b": 1}

    def test_empty(self):
        assert term_frequencies([]) == {}


class TestDocumentFrequencies:
    def test_counts_documents_not_occurrences(self):
        docs = [["a", "a", "b"], ["a", "c"]]
        assert document_frequencies(docs) == {"a": 2, "b": 1, "c": 1}


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_too_short_returns_empty(self):
        assert ngrams(["a"], 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestJaccard:
    def test_identical(self):
        assert jaccard(["a", "b"], ["b", "a"]) == 1.0

    def test_disjoint(self):
        assert jaccard(["a"], ["b"]) == 0.0

    def test_both_empty(self):
        assert jaccard([], []) == 1.0

    def test_partial_overlap(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)


class TestAggregates:
    def test_vocabulary_size(self):
        assert vocabulary_size([["a", "b"], ["b", "c"]]) == 3

    def test_average_length(self):
        assert average_length([["a"], ["a", "b", "c"]]) == 2.0

    def test_average_length_empty(self):
        assert average_length([]) == 0.0
