"""Tests for seeded MinHash signatures and Jaccard estimation."""

import pytest

from repro.dedup.minhash import EMPTY_COMPONENT, MinHasher, estimated_jaccard
from repro.dedup.shingles import shingle_hashes


@pytest.fixture(scope="module")
def hasher():
    return MinHasher(num_hashes=128, seed=42)


class TestMinHasher:
    def test_same_seed_same_signature(self):
        shingles = shingle_hashes(tuple("some page content here".split()), 2)
        assert MinHasher(64, seed=7).signature(shingles) == \
            MinHasher(64, seed=7).signature(shingles)

    def test_different_seed_different_signature(self):
        shingles = shingle_hashes(tuple("some page content here".split()), 2)
        assert MinHasher(64, seed=7).signature(shingles) != \
            MinHasher(64, seed=8).signature(shingles)

    def test_signature_length(self, hasher):
        shingles = shingle_hashes(("a", "b", "c"), 2)
        assert len(hasher.signature(shingles)) == 128

    def test_empty_set_maps_to_sentinel(self, hasher):
        assert hasher.signature(frozenset()) == (EMPTY_COMPONENT,) * 128

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(0)


class TestEstimatedJaccard:
    def test_identical_sets_estimate_one(self, hasher):
        sig = hasher.signature(shingle_hashes(tuple("a b c d e".split()), 2))
        assert estimated_jaccard(sig, sig) == 1.0

    def test_disjoint_sets_estimate_near_zero(self, hasher):
        left = hasher.signature(shingle_hashes(
            tuple(f"left{i}" for i in range(50)), 2))
        right = hasher.signature(shingle_hashes(
            tuple(f"right{i}" for i in range(50)), 2))
        assert estimated_jaccard(left, right) < 0.1

    def test_estimate_tracks_true_jaccard(self, hasher):
        # Two sets overlapping in half their shingles: true J = 1/3.
        shared = [f"shared{i}" for i in range(40)]
        left_tokens = tuple(shared + [f"l{i}" for i in range(40)])
        right_tokens = tuple(shared + [f"r{i}" for i in range(40)])
        left = shingle_hashes(left_tokens, 1)
        right = shingle_hashes(right_tokens, 1)
        true_j = len(left & right) / len(left | right)
        estimate = estimated_jaccard(hasher.signature(left),
                                     hasher.signature(right))
        assert estimate == pytest.approx(true_j, abs=0.15)

    def test_mismatched_lengths_rejected(self, hasher):
        with pytest.raises(ValueError):
            estimated_jaccard((1, 2), (1, 2, 3))
