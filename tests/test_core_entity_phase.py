"""Tests for the entity phase (Sect. IV-C)."""

import pytest

from repro.aspects.relevance import OracleRelevance
from repro.core.config import L2QConfig
from repro.core.domain_phase import DomainPhase
from repro.core.entity_phase import EntityPhase


@pytest.fixture(scope="module")
def setup(researcher_corpus):
    """Domain model plus a target entity's current pages."""
    entity_ids = researcher_corpus.entity_ids()
    domain_corpus = researcher_corpus.subset(entity_ids[:8])
    config = L2QConfig()
    model = DomainPhase(domain_corpus, config).learn("RESEARCH", OracleRelevance("RESEARCH"))
    target_id = entity_ids[-1]
    entity = researcher_corpus.get_entity(target_id)
    current_pages = researcher_corpus.pages_of(target_id)[:5]
    relevance = OracleRelevance("RESEARCH")
    phase = EntityPhase(researcher_corpus.type_system, config)
    return {
        "model": model,
        "entity": entity,
        "pages": current_pages,
        "relevance": relevance,
        "phase": phase,
    }


class TestCandidateEnumeration:
    def test_candidates_exclude_seed_words(self, setup):
        candidates = setup["phase"].enumerate_candidates(
            setup["entity"], setup["pages"], setup["model"])
        seed_words = set(setup["entity"].seed_query) | set(setup["entity"].name_tokens)
        for query in candidates:
            assert not seed_words & set(query)

    def test_domain_queries_expand_candidates(self, setup):
        without = setup["phase"].enumerate_candidates(setup["entity"], setup["pages"], None)
        with_domain = setup["phase"].enumerate_candidates(
            setup["entity"], setup["pages"], setup["model"])
        assert len(with_domain) >= len(without)

    def test_domain_queries_need_partial_evidence(self, setup):
        observed = set()
        for page in setup["pages"]:
            observed.update(page.token_set)
        candidates = set(setup["phase"].enumerate_candidates(
            setup["entity"], setup["pages"], setup["model"]))
        from_current = set(setup["phase"].enumerate_candidates(
            setup["entity"], setup["pages"], None))
        for query in candidates - from_current:
            assert any(word in observed for word in query)

    def test_exclusion_filter(self, setup):
        all_candidates = setup["phase"].enumerate_candidates(
            setup["entity"], setup["pages"], setup["model"])
        excluded = {all_candidates[0]}
        filtered = setup["phase"].enumerate_candidates(
            setup["entity"], setup["pages"], setup["model"], exclude=excluded)
        assert all_candidates[0] not in filtered


class TestUtilityComputation:
    def test_compute_produces_all_five_vectors(self, setup):
        utilities = setup["phase"].compute(
            setup["entity"], setup["pages"], setup["relevance"],
            domain_model=setup["model"])
        assert utilities.candidates
        assert utilities.precision.mode == "precision"
        assert utilities.recall.mode == "recall"
        assert utilities.recall_current.mode == "recall"
        assert utilities.recall_all.mode == "recall"
        assert utilities.recall_current_all.mode == "recall"

    def test_rankings_are_sorted(self, setup):
        utilities = setup["phase"].compute(
            setup["entity"], setup["pages"], setup["relevance"],
            domain_model=setup["model"])
        by_precision = utilities.ranked_by_precision()
        values = [utilities.precision_of(q) for q in by_precision]
        assert values == sorted(values, reverse=True)
        by_recall = utilities.ranked_by_recall()
        recalls = [utilities.recall_of(q) for q in by_recall]
        assert recalls == sorted(recalls, reverse=True)

    def test_no_templates_mode_has_no_template_vertices(self, setup):
        utilities = setup["phase"].compute(
            setup["entity"], setup["pages"], setup["relevance"],
            domain_model=None, use_templates=False)
        assert utilities.assembled.graph.num_templates == 0

    def test_domain_model_changes_rankings(self, setup):
        plain = setup["phase"].compute(
            setup["entity"], setup["pages"], setup["relevance"], domain_model=None)
        adapted = setup["phase"].compute(
            setup["entity"], setup["pages"], setup["relevance"],
            domain_model=setup["model"])
        shared = set(plain.candidates) & set(adapted.candidates)
        assert shared
        changed = any(abs(plain.precision_of(q) - adapted.precision_of(q)) > 1e-9
                      for q in shared)
        assert changed

    def test_topical_queries_outrank_background_for_research(self, setup):
        utilities = setup["phase"].compute(
            setup["entity"], setup["pages"], setup["relevance"],
            domain_model=setup["model"])
        topics = set(setup["entity"].attribute_values("topic"))
        topical = [q for q in utilities.candidates if set(q) & topics]
        background = [q for q in utilities.candidates
                      if set(q) & {"copyright", "newsletter", "weather"}]
        if topical and background:
            best_topical = max(utilities.precision_of(q) for q in topical)
            best_background = max(utilities.precision_of(q) for q in background)
            assert best_topical > best_background
