"""Shared test builders, importable explicitly as ``tests.helpers``.

These used to live in ``tests/conftest.py`` and were imported with
``from conftest import ...``, which breaks as soon as another ``conftest``
module (e.g. the benchmark harness's) shadows it on ``sys.path``.  Keeping
the builders in a normally-named module and importing them with an explicit
package path makes the resolution unambiguous (``pytest.ini`` puts the
repository root on ``sys.path``).
"""

from __future__ import annotations

from repro.corpus.document import Page, Paragraph


def make_paragraph(paragraph_id, tokens, aspect=None):
    """Build a paragraph from a token list (helper used across tests)."""
    return Paragraph(paragraph_id=paragraph_id, tokens=tuple(tokens), aspect=aspect)


def make_page(page_id, entity_id, paragraph_specs):
    """Build a page from ``[(tokens, aspect), ...]`` specs."""
    paragraphs = tuple(
        make_paragraph(f"{page_id}#{i}", tokens, aspect)
        for i, (tokens, aspect) in enumerate(paragraph_specs)
    )
    return Page(page_id=page_id, entity_id=entity_id, paragraphs=paragraphs)


def harvest_signature(result):
    """Everything scheduling-independent about a harvest run.

    The single definition of "bit-for-bit equal" used by every backend- and
    worker-equivalence assertion (tests and benchmarks): fired queries,
    result/new/seed page ids and the run's identity — but no wall-clock
    timings, which legitimately vary with scheduling.
    """
    return (
        result.entity_id,
        result.aspect,
        result.selector_name,
        tuple(result.seed_page_ids),
        tuple((r.query, r.result_page_ids, r.new_page_ids)
              for r in result.iterations),
    )
