"""Shared test builders, importable explicitly as ``tests.helpers``.

These used to live in ``tests/conftest.py`` and were imported with
``from conftest import ...``, which breaks as soon as another ``conftest``
module (e.g. the benchmark harness's) shadows it on ``sys.path``.  Keeping
the builders in a normally-named module and importing them with an explicit
package path makes the resolution unambiguous (``pytest.ini`` puts the
repository root on ``sys.path``).
"""

from __future__ import annotations

from repro.corpus.document import Page, Paragraph


def make_paragraph(paragraph_id, tokens, aspect=None):
    """Build a paragraph from a token list (helper used across tests)."""
    return Paragraph(paragraph_id=paragraph_id, tokens=tuple(tokens), aspect=aspect)


def make_page(page_id, entity_id, paragraph_specs):
    """Build a page from ``[(tokens, aspect), ...]`` specs."""
    paragraphs = tuple(
        make_paragraph(f"{page_id}#{i}", tokens, aspect)
        for i, (tokens, aspect) in enumerate(paragraph_specs)
    )
    return Page(page_id=page_id, entity_id=entity_id, paragraphs=paragraphs)
