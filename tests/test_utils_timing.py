"""Tests for the stopwatch and timing accumulator."""

from repro.utils.timing import Stopwatch, TimingAccumulator


class TestStopwatch:
    def test_measures_non_negative_time(self):
        with Stopwatch() as sw:
            sum(range(1000))
        assert sw.elapsed >= 0.0

    def test_elapsed_zero_before_use(self):
        assert Stopwatch().elapsed == 0.0


class TestTimingAccumulator:
    def test_average_of_samples(self):
        acc = TimingAccumulator()
        acc.add("selection", 1.0)
        acc.add("selection", 3.0)
        assert acc.average("selection") == 2.0

    def test_average_empty_category(self):
        assert TimingAccumulator().average("missing") == 0.0

    def test_total_and_count(self):
        acc = TimingAccumulator()
        acc.add("fetch", 2.0)
        acc.add("fetch", 4.0)
        assert acc.total("fetch") == 6.0
        assert acc.count("fetch") == 2

    def test_merge(self):
        a = TimingAccumulator()
        b = TimingAccumulator()
        a.add("x", 1.0)
        b.add("x", 3.0)
        b.add("y", 5.0)
        a.merge(b)
        assert a.average("x") == 2.0
        assert a.average("y") == 5.0

    def test_categories_sorted(self):
        acc = TimingAccumulator()
        acc.add("b", 1.0)
        acc.add("a", 1.0)
        assert acc.categories() == ["a", "b"]
