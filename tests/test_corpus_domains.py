"""Tests for the domain specifications (researcher and car)."""

import pytest

from repro.corpus.domains import available_domains, car_domain, get_domain, researcher_domain

PAPER_RESEARCHER_ASPECTS = {
    "BIOGRAPHY", "PRESENTATION", "AWARD", "RESEARCH", "EDUCATION", "EMPLOYMENT", "CONTACT",
}
PAPER_CAR_ASPECTS = {
    "VERDICT", "INTERIOR", "EXTERIOR", "PRICE", "RELIABILITY", "SAFETY", "DRIVING",
}


class TestDomainRegistry:
    def test_available_domains(self):
        assert available_domains() == ["car", "researcher"]

    def test_get_domain(self):
        assert get_domain("researcher").name == "researcher"
        assert get_domain("car").name == "car"

    def test_unknown_domain_raises(self):
        with pytest.raises(KeyError):
            get_domain("movies")


class TestResearcherDomain:
    def setup_method(self):
        self.spec = researcher_domain()

    def test_has_the_papers_seven_aspects(self):
        assert set(self.spec.aspect_names()) == PAPER_RESEARCHER_ASPECTS

    def test_research_is_the_most_frequent_aspect(self):
        weights = {a.name: a.weight for a in self.spec.aspects}
        assert weights["RESEARCH"] == max(weights.values())

    def test_every_aspect_has_templates_and_manual_queries(self):
        for aspect in self.spec.aspects:
            assert len(aspect.sentence_templates) >= 3
            assert 1 <= len(aspect.manual_queries) <= 5
            assert aspect.signature_words

    def test_manual_queries_are_tuples_of_words(self):
        for query in self.spec.manual_queries("AWARD"):
            assert isinstance(query, tuple)
            assert all(isinstance(word, str) for word in query)

    def test_unknown_aspect_raises(self):
        with pytest.raises(KeyError):
            self.spec.aspect("HOBBY")

    def test_type_system_maps_topic_words(self):
        system = self.spec.build_type_system()
        assert "topic" in system.types_of("data_mining")
        assert "journal" in system.types_of("tkde")
        assert "institute" in system.types_of("uiuc")

    def test_expanded_pools_include_synthetic_values(self):
        pools = self.spec.expanded_pools()
        assert any(word.startswith("topic_") for word in pools["topic"])
        assert len(pools["topic"]) > len(self.spec.type_pool("topic").words)

    def test_template_slots_reference_known_types_or_regex(self):
        known = {pool.name for pool in self.spec.type_pools} | {
            "email", "url", "phonenum", "year"}
        for aspect in self.spec.aspects:
            for template in aspect.sentence_templates:
                for token in template.split():
                    if token.startswith("{") and token.endswith("}"):
                        slot = token[1:-1].lstrip("~")
                        assert slot in known, f"unknown slot {slot} in {template!r}"

    def test_seed_attribute_types_exist(self):
        for type_name in self.spec.seed_attribute_types:
            assert self.spec.type_pool(type_name)


class TestCarDomain:
    def setup_method(self):
        self.spec = car_domain()

    def test_has_the_papers_seven_aspects(self):
        assert set(self.spec.aspect_names()) == PAPER_CAR_ASPECTS

    def test_driving_is_the_most_frequent_aspect(self):
        weights = {a.name: a.weight for a in self.spec.aspects}
        assert weights["DRIVING"] == max(weights.values())

    def test_safety_and_reliability_are_rare(self):
        weights = {a.name: a.weight for a in self.spec.aspects}
        assert weights["SAFETY"] == min(weights.values())

    def test_type_system_has_car_types(self):
        system = self.spec.build_type_system()
        assert "engine" in system.types_of("v6_engine")
        assert "rating_site" in system.types_of("edmunds")

    def test_every_aspect_has_manual_queries(self):
        for aspect in self.spec.aspects:
            assert aspect.manual_queries
