"""Per-run fetch accounting and its orchestrator-side merge.

The sharded process backend used to discard worker-side engine statistics
(``SearchEngine.__setstate__`` resets them and nothing shipped them back).
Each harvest run now carries its own :class:`RunFetchAccounting` inside the
result; :func:`merge_run_accounting` folds a batch of them into one
:class:`FetchStatistics` by replaying cache-key lookups in job order —
identical on every backend because it never reads a live engine.
"""

import pytest

from repro.aspects.relevance import AllRelevant
from repro.core.config import L2QConfig
from repro.core.harvester import Harvester
from repro.core.selection import make_selector
from repro.search.engine import (
    FetchStatistics,
    RunFetchAccounting,
    SearchEngine,
    merge_run_accounting,
)


class TestRunFetchAccounting:
    def test_record_accumulates_counters(self):
        accounting = RunFetchAccounting()
        accounting.record("e1", 5, 2.5)
        accounting.record("e1", 3, 2.5)
        accounting.record("e2", 1, 2.5)
        assert accounting.queries_fired == 3
        assert accounting.pages_fetched == 9
        assert accounting.simulated_fetch_seconds == pytest.approx(22.5)
        assert accounting.queries_by_entity == {"e1": 2, "e2": 1}

    def test_merge_replays_cache_keys_in_order(self):
        first = RunFetchAccounting()
        first.record("e1", 5, 1.0)
        first.record_lookup(("e1", ("q",), 5))
        second = RunFetchAccounting()
        second.record("e1", 5, 1.0)
        second.record_lookup(("e1", ("q",), 5))     # repeat -> hit
        second.record_lookup(("e1", ("other",), 5))  # fresh  -> miss
        merged = merge_run_accounting([first, second])
        assert merged.queries_fired == 2
        assert merged.pages_fetched == 10
        assert merged.cache_misses == 2
        assert merged.cache_hits == 1
        assert merged.queries_by_entity == {"e1": 2}

    def test_merge_skips_missing_accounts(self):
        accounting = RunFetchAccounting()
        accounting.record("e1", 2, 1.0)
        merged = merge_run_accounting([None, accounting, None])
        assert merged.queries_fired == 1

    def test_merge_of_nothing_is_empty(self):
        assert merge_run_accounting([]) == FetchStatistics()


class TestEngineAccountingParameter:
    def test_search_records_into_accounting(self, researcher_corpus):
        engine = SearchEngine(researcher_corpus, top_k=5)
        entity_id = researcher_corpus.entity_ids()[0]
        entity = researcher_corpus.get_entity(entity_id)
        accounting = RunFetchAccounting()
        results = engine.search(entity_id, list(entity.seed_query),
                                accounting=accounting)
        assert accounting.queries_fired == 1
        assert accounting.pages_fetched == len(results)
        assert len(accounting.cache_keys) == 1
        # The engine's own statistics are recorded as before.
        assert engine.fetch_statistics.queries_fired == 1

    def test_unrecorded_search_skips_fetch_but_logs_lookup(self,
                                                           researcher_corpus):
        engine = SearchEngine(researcher_corpus, top_k=5)
        entity_id = researcher_corpus.entity_ids()[0]
        accounting = RunFetchAccounting()
        engine.search(entity_id, ["anything"], record_fetch=False,
                      accounting=accounting)
        assert accounting.queries_fired == 0
        assert len(accounting.cache_keys) == 1


class TestHarvestAttachesAccounting:
    def test_result_carries_run_account(self, researcher_corpus):
        config = L2QConfig()
        engine = SearchEngine(researcher_corpus, top_k=5)
        harvester = Harvester(researcher_corpus, engine, config)
        entity_id = researcher_corpus.entity_ids()[0]
        result = harvester.harvest(entity_id, "RESEARCH",
                                   make_selector("RND", config),
                                   AllRelevant(), num_queries=2)
        accounting = result.fetch_accounting
        assert accounting is not None
        # Seed query + every fired query, nothing else.
        assert accounting.queries_fired == 1 + result.num_queries
        assert accounting.pages_fetched == len(result.seed_page_ids) + sum(
            len(record.result_page_ids) for record in result.iterations)

    def test_serial_merge_matches_engine_counters(self, researcher_corpus):
        config = L2QConfig()
        engine = SearchEngine(researcher_corpus, top_k=5)
        harvester = Harvester(researcher_corpus, engine, config)
        entities = researcher_corpus.entity_ids()[:3]
        results = [
            harvester.harvest(entity_id, "RESEARCH",
                              make_selector("RND", config),
                              AllRelevant(), num_queries=2)
            for entity_id in entities
        ]
        merged = merge_run_accounting([r.fetch_accounting for r in results])
        engine_stats = engine.fetch_statistics
        assert merged.queries_fired == engine_stats.queries_fired
        assert merged.pages_fetched == engine_stats.pages_fetched
        assert merged.cache_hits == engine_stats.cache_hits
        assert merged.cache_misses == engine_stats.cache_misses
        assert merged.queries_by_entity == engine_stats.queries_by_entity
