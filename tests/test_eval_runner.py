"""Tests for the experiment runner (evaluation protocol of Sect. VI-A)."""

import pytest

from repro.core.config import L2QConfig
from repro.eval.runner import DOMAIN_AWARE_METHODS, ExperimentRunner


class TestPreparedSplit:
    def test_classifiers_trained_per_aspect(self, researcher_prepared, researcher_corpus):
        report = researcher_prepared.classifier_suite.accuracy_report()
        assert [r.aspect for r in report] == researcher_corpus.aspects

    def test_relevance_functions_for_every_aspect(self, researcher_prepared,
                                                  researcher_corpus):
        assert set(researcher_prepared.relevance_by_aspect) == set(researcher_corpus.aspects)
        assert set(researcher_prepared.ground_truth_by_aspect) == set(researcher_corpus.aspects)

    def test_domain_model_cached(self, researcher_prepared):
        first = researcher_prepared.domain_model("RESEARCH")
        second = researcher_prepared.domain_model("RESEARCH")
        assert first is second

    def test_hr_statistics_cached(self, researcher_prepared):
        first = researcher_prepared.hr_statistics("RESEARCH")
        second = researcher_prepared.hr_statistics("RESEARCH")
        assert first is second

    def test_domain_corpus_is_subset_of_domain_entities(self, researcher_prepared):
        assert set(researcher_prepared.domain_corpus.entity_ids()) <= \
            set(researcher_prepared.split.domain_entities)


class TestDomainFraction:
    def test_zero_fraction_gives_empty_domain_corpus(self, researcher_runner):
        split = researcher_runner.default_split(0)
        prepared = researcher_runner.prepare(split, domain_fraction=0.0)
        assert prepared.domain_corpus.num_entities() == 0
        assert prepared.domain_model("RESEARCH").is_empty()

    def test_partial_fraction_subsamples(self, researcher_runner):
        split = researcher_runner.default_split(0)
        prepared = researcher_runner.prepare(split, domain_fraction=0.5)
        assert 0 < prepared.domain_corpus.num_entities() <= len(split.domain_entities)

    def test_classifier_still_trained_with_zero_domain_fraction(self, researcher_runner):
        split = researcher_runner.default_split(0)
        prepared = researcher_runner.prepare(split, domain_fraction=0.0)
        assert prepared.classifier_suite.accuracy_report()


class TestSelectorsAndHarvests:
    @pytest.mark.parametrize("method", ["RND", "L2QBAL", "LM", "AQ", "HR", "MQ", "IDEAL"])
    def test_create_selector(self, researcher_runner, researcher_prepared, method):
        selector = researcher_runner.create_selector(method, researcher_prepared, "RESEARCH")
        assert selector is not None

    def test_unknown_method_raises(self, researcher_runner, researcher_prepared):
        with pytest.raises(KeyError):
            researcher_runner.create_selector("BM25", researcher_prepared, "RESEARCH")

    def test_harvest_once_deterministic(self, researcher_runner, researcher_prepared):
        entity_id = researcher_prepared.split.test_entities[0]
        first = researcher_runner.harvest_once(researcher_prepared, "L2QBAL",
                                               entity_id, "RESEARCH", 2)
        second = researcher_runner.harvest_once(researcher_prepared, "L2QBAL",
                                                entity_id, "RESEARCH", 2)
        assert first.queries() == second.queries()
        assert first.gathered_after(2) == second.gathered_after(2)

    def test_domain_aware_methods_constant(self):
        assert "L2QBAL" in DOMAIN_AWARE_METHODS
        assert "LM" not in DOMAIN_AWARE_METHODS


class TestEvaluateMethods:
    def test_series_structure(self, researcher_runner, researcher_corpus):
        series = researcher_runner.evaluate_methods(
            ["RND", "MQ"], num_queries_list=(2,), num_splits=1,
            max_test_entities=2, aspects=researcher_corpus.aspects[:1])
        assert set(series) == {"RND", "MQ"}
        for method_series in series.values():
            assert method_series.budgets() == [2]
            assert 0.0 <= method_series.precision[2] <= 1.0
            assert 0.0 <= method_series.recall[2] <= 1.0
            assert 0.0 <= method_series.f_score[2] <= 1.0

    def test_requires_methods(self, researcher_runner):
        with pytest.raises(ValueError):
            researcher_runner.evaluate_methods([])

    def test_unnormalised_evaluation(self, researcher_runner, researcher_corpus):
        series = researcher_runner.evaluate_methods(
            ["MQ"], num_queries_list=(2,), max_test_entities=1,
            aspects=researcher_corpus.aspects[:1], normalize=False)
        assert 0.0 <= series["MQ"].precision[2] <= 1.0


class TestEfficiencyAndValidation:
    def test_measure_efficiency(self, researcher_runner, researcher_corpus):
        report = researcher_runner.measure_efficiency(
            methods=("L2QBAL",), num_queries=2, max_test_entities=1,
            aspects=researcher_corpus.aspects[:1])
        assert "L2QBAL" in report.selection_seconds
        assert report.selection_seconds["L2QBAL"] >= 0.0
        assert report.fetch_seconds > 0.0
        assert report.queries_measured["L2QBAL"] >= 1

    def test_validate_seed_recall_restores_config(self, researcher_corpus):
        runner = ExperimentRunner(researcher_corpus, config=L2QConfig(), base_seed=5)
        original = runner.config.seed_recall_r0
        best, scores = runner.validate_seed_recall(
            candidates=(0.2, 0.5), method="MQ", num_queries=2,
            max_validation_entities=1, aspects=researcher_corpus.aspects[:1])
        assert best in (0.2, 0.5)
        assert set(scores) == {0.2, 0.5}
        assert runner.config.seed_recall_r0 == original
