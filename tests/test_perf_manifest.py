"""BENCH_manifest: unified schema, determinism, and artifact freshness."""

import json
from pathlib import Path

import pytest

from repro.perf.manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifest,
    render_manifest_json,
    throughput_entries,
    write_manifest,
)
from repro.perf.report import format_manifest, format_manifest_delta

RESULTS_DIR = Path(__file__).parent.parent / "benchmarks" / "results"

UNIFIED_FIELDS = {"source", "benchmark", "kind", "scale", "backend", "method",
                  "versions", "wall_seconds", "pages_per_second",
                  "speedup_vs_serial", "metrics"}


@pytest.fixture()
def synthetic_results(tmp_path):
    """A results directory with one artifact of every known family."""
    (tmp_path / "BENCH_harvest.json").write_text(json.dumps({
        "scale": "smoke", "num_queries": 3, "workers": 2, "python": "3.11.7",
        "jobs": 16,
        "backends": {
            "serial": {"wall_seconds": 2.0, "pages_gathered": 200,
                       "pages_per_second": 100.0, "jobs_per_second": 8.0,
                       "speedup_vs_serial": 1.0},
            "process": {"wall_seconds": 1.0, "pages_gathered": 200,
                        "pages_per_second": 200.0, "jobs_per_second": 16.0,
                        "speedup_vs_serial": 2.0},
        },
    }), encoding="utf-8")
    (tmp_path / "BENCH_selection.json").write_text(json.dumps({
        "scale": "smoke", "python": "3.11.7", "cache_hit_rate": 0.5,
        "methods": {"L2QP": {"queries_measured": 12,
                             "mean_selection_seconds": 0.08,
                             "selection_queries_per_second": 12.5,
                             "selection_to_fetch_ratio": 0.01}},
    }), encoding="utf-8")
    (tmp_path / "BENCH_scenarios.json").write_text(json.dumps({
        "schema": "BENCH_scenarios/v3", "scale": "smoke",
        "methods": ["L2QBAL"], "scenarios": ["zipf-skew"],
        "summary": {"zipf-skew": {"mean_f_delta": -0.1}},
    }), encoding="utf-8")
    (tmp_path / "BENCH_mystery.json").write_text(json.dumps({
        "schema": "BENCH_mystery/v9", "scale": "huge", "stuff": [1, 2],
    }), encoding="utf-8")
    return tmp_path


class TestManifestSchema:
    def test_every_entry_carries_the_unified_fields(self, synthetic_results):
        manifest = build_manifest(synthetic_results)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["entries"]
        for entry in manifest["entries"]:
            assert set(entry) == UNIFIED_FIELDS

    def test_backend_throughput_entries(self, synthetic_results):
        manifest = build_manifest(synthetic_results)
        backends = throughput_entries(manifest)
        assert set(backends) == {"harvest/serial", "harvest/process"}
        process = backends["harvest/process"]
        assert process["scale"] == "smoke"
        assert process["pages_per_second"] == 200.0
        assert process["speedup_vs_serial"] == 2.0
        assert process["versions"] == {"python": "3.11.7"}
        assert process["metrics"]["workers"] == 2

    def test_selection_and_robustness_entries(self, synthetic_results):
        manifest = build_manifest(synthetic_results)
        by_kind = {}
        for entry in manifest["entries"]:
            by_kind.setdefault(entry["kind"], []).append(entry)
        selection = by_kind["selection-latency"][0]
        assert selection["method"] == "L2QP"
        assert selection["wall_seconds"] == 0.08
        robustness = by_kind["robustness-matrix"][0]
        assert robustness["metrics"]["summary"]["zipf-skew"]["mean_f_delta"] == -0.1
        # Robustness matrices are wall-clock-free by design.
        assert robustness["pages_per_second"] is None

    def test_unknown_artifact_family_is_indexed_not_dropped(self, synthetic_results):
        manifest = build_manifest(synthetic_results)
        unknown = [e for e in manifest["entries"]
                   if e["source"] == "BENCH_mystery.json"]
        assert len(unknown) == 1
        assert unknown[0]["kind"] == "unclassified"
        assert unknown[0]["scale"] == "huge"
        assert unknown[0]["metrics"]["schema"] == "BENCH_mystery/v9"

    def test_sources_index(self, synthetic_results):
        manifest = build_manifest(synthetic_results)
        assert manifest["sources"] == sorted({
            "BENCH_harvest.json", "BENCH_selection.json",
            "BENCH_scenarios.json", "BENCH_mystery.json"})


class TestManifestDeterminism:
    def test_round_trip(self, synthetic_results):
        path = write_manifest(synthetic_results)
        assert path.name == MANIFEST_NAME
        assert load_manifest(path) == build_manifest(synthetic_results)

    def test_regeneration_is_byte_identical(self, synthetic_results):
        first = write_manifest(synthetic_results).read_bytes()
        second = write_manifest(synthetic_results).read_bytes()
        assert first == second

    def test_manifest_ignores_itself(self, synthetic_results):
        before = build_manifest(synthetic_results)
        write_manifest(synthetic_results)
        after = build_manifest(synthetic_results)
        assert before == after


class TestCommittedManifest:
    def test_committed_manifest_is_current(self):
        """The committed BENCH_manifest.json must be exactly what the
        committed artifacts produce — the same freshness bar CI enforces
        with `git diff --exit-code`."""
        committed = RESULTS_DIR / MANIFEST_NAME
        assert committed.exists(), "run: python -m repro.cli perf manifest"
        assert committed.read_text(encoding="utf-8") == \
            render_manifest_json(build_manifest(RESULTS_DIR))


class TestReports:
    def test_format_manifest_lists_backends(self, synthetic_results):
        text = format_manifest(build_manifest(synthetic_results))
        assert "harvest/process" in text
        assert "2.00x" in text
        assert "BENCH_mystery.json" in text

    def test_format_delta_flags_changes(self, synthetic_results):
        fresh = build_manifest(synthetic_results)
        committed = json.loads(json.dumps(fresh))
        for entry in committed["entries"]:
            if entry["kind"] == "backend-throughput":
                entry["pages_per_second"] = entry["pages_per_second"] * 2
        text = format_manifest_delta(fresh, committed)
        assert "-50.0%" in text

    def test_format_delta_notes_new_and_missing(self, synthetic_results):
        fresh = build_manifest(synthetic_results)
        committed = {"schema": MANIFEST_SCHEMA, "entries": []}
        text = format_manifest_delta(fresh, committed)
        assert "no throughput entries shared" in text
        assert "new" in text
