"""Tests for the seeded randomness helpers."""

import pytest

from repro.utils.rng import SeededRandom, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_depends_on_labels(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_depends_on_base_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_non_negative_63_bit(self):
        for labels in [(), ("x",), ("x", "y", 3)]:
            seed = derive_seed(7, *labels)
            assert 0 <= seed < 2 ** 63


class TestSeededRandom:
    def test_same_seed_same_sequence(self):
        a = SeededRandom(5)
        b = SeededRandom(5)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_spawn_independent_and_deterministic(self):
        parent = SeededRandom(5)
        child1 = parent.spawn("x")
        child2 = SeededRandom(5).spawn("x")
        assert child1.seed == child2.seed
        assert parent.spawn("y").seed != child1.seed

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SeededRandom(1).choice([])

    def test_sample_larger_than_population(self):
        rng = SeededRandom(1)
        result = rng.sample([1, 2, 3], 10)
        assert sorted(result) == [1, 2, 3]

    def test_sample_without_replacement(self):
        rng = SeededRandom(1)
        result = rng.sample(list(range(100)), 10)
        assert len(result) == 10
        assert len(set(result)) == 10

    def test_shuffled_does_not_mutate_input(self):
        original = [1, 2, 3, 4, 5]
        copy = list(original)
        SeededRandom(3).shuffled(original)
        assert original == copy

    def test_weighted_choice_respects_zero_weight(self):
        rng = SeededRandom(2)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            SeededRandom(1).weighted_choice(["a"], [1.0, 2.0])

    def test_poisson_like_bounds(self):
        rng = SeededRandom(4)
        for _ in range(100):
            value = rng.poisson_like(1.5, 3)
            assert 0 <= value <= 3

    def test_poisson_like_zero_mean(self):
        assert SeededRandom(4).poisson_like(0.0, 5) == 0

    def test_randint_inclusive(self):
        rng = SeededRandom(9)
        values = {rng.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}
