"""Vectorized hot-path kernels vs their scalar references, property-tested.

The sparse-matrix selection kernels promise *bit-identical* results to the
scalar reference implementations they replaced: the ranker ``score_rows`` /
``score_matrix`` kernels vs ``score``, the multi-RHS joint solver vs one
:meth:`~repro.graph.random_walk.UtilitySolver.solve` per problem, and the
selector's batched ``_choose`` vs ``_choose_scalar``.  These tests pin that
contract over seeded random corpora, graphs and regularizations — including
the edge cases (empty/singleton candidate sets, unseen query terms,
incremental index updates) where a vectorized path most easily drifts.
"""

import random

import numpy as np
import pytest

from repro.core.selection import ContextAwareSelection
from repro.core.utility import GraphAssembler
from repro.corpus.knowledge_base import build_type_system
from repro.graph.random_walk import (
    MODE_PRECISION,
    MODE_RECALL,
    RegularizationProblem,
    UtilitySolver,
)
from repro.graph.reinforcement import ReinforcementGraphBuilder
from repro.search.bm25 import BM25Ranker
from repro.search.index import InvertedIndex
from repro.search.language_model import DirichletLanguageModel

VOCABULARY = [f"w{i}" for i in range(30)]


def _random_index(rng: random.Random, num_docs: int) -> InvertedIndex:
    index = InvertedIndex()
    for position in range(num_docs):
        tokens = [rng.choice(VOCABULARY)
                  for _ in range(rng.randint(1, 25))]
        index.add_document(f"d{position:02d}", tokens)
    return index


def _random_query(rng: random.Random) -> list:
    pool = VOCABULARY + ["unseen-term"]
    return [rng.choice(pool) for _ in range(rng.randint(1, 3))]


RANKERS = [
    pytest.param(lambda index: DirichletLanguageModel(index, mu=50.0),
                 id="dirichlet-lm"),
    pytest.param(lambda index: BM25Ranker(index, k1=1.2, b=0.75), id="bm25"),
]


class TestRankerKernelEquivalence:
    @pytest.mark.parametrize("make_ranker", RANKERS)
    @pytest.mark.parametrize("seed", range(5))
    def test_score_matrix_matches_scalar_bitwise(self, make_ranker, seed):
        rng = random.Random(seed)
        ranker = make_ranker(_random_index(rng, rng.randint(1, 10)))
        queries = [_random_query(rng) for _ in range(6)]
        scores, doc_ids = ranker.score_matrix(queries)
        for row, query in enumerate(queries):
            for column, doc_id in enumerate(doc_ids):
                # Bit-identical, not approximately equal.
                assert scores[row, column] == ranker.score(query, doc_id), \
                    (query, doc_id)

    @pytest.mark.parametrize("make_ranker", RANKERS)
    @pytest.mark.parametrize("seed", range(5))
    def test_rank_matches_scalar_path(self, make_ranker, seed):
        rng = random.Random(100 + seed)
        ranker = make_ranker(_random_index(rng, rng.randint(2, 10)))
        for _ in range(6):
            query = _random_query(rng)
            top_k = rng.choice([0, 1, 3])
            require_match = rng.random() < 0.5
            assert ranker.rank(query, top_k=top_k,
                               require_match=require_match) == \
                ranker._rank_scalar(query, top_k, require_match)

    @pytest.mark.parametrize("make_ranker", RANKERS)
    def test_unseen_terms_and_empty_query(self, make_ranker):
        ranker = make_ranker(InvertedIndex.from_documents(
            {"d0": ["alpha", "beta"], "d1": ["beta", "gamma"]}))
        # A query of only unseen terms matches nothing.
        assert ranker.rank(["never-indexed"]) == []
        # Mixed seen/unseen still scores identically to the scalar path.
        query = ["alpha", "never-indexed"]
        scores, doc_ids = ranker.score_matrix([query])
        for column, doc_id in enumerate(doc_ids):
            assert scores[0, column] == ranker.score(query, doc_id)
        # Empty queries retrieve nothing.
        assert ranker.rank([]) == []

    @pytest.mark.parametrize("make_ranker", RANKERS)
    def test_incremental_updates_refresh_the_kernel_snapshot(self, make_ranker):
        # The CSR snapshot is invalidated by add_document: scores after an
        # incremental update must match a scalar re-score, not the stale
        # snapshot.
        index = InvertedIndex.from_documents({"d0": ["alpha", "beta"]})
        ranker = make_ranker(index)
        before = ranker.rank(["beta"])
        assert [doc_id for doc_id, _ in before] == ["d0"]
        index.add_document("d1", ["beta", "beta", "gamma"])
        after = ranker.rank(["beta"])
        assert {doc_id for doc_id, _ in after} == {"d0", "d1"}
        assert after == ranker._rank_scalar(["beta"], 0, True)

    def test_singleton_index_matches_scalar(self):
        index = InvertedIndex.from_documents({"only": ["alpha"]})
        for make_ranker in (DirichletLanguageModel, BM25Ranker):
            ranker = make_ranker(index)
            scores, doc_ids = ranker.score_matrix([["alpha"], ["beta"]])
            assert doc_ids == ("only",)
            assert scores[0, 0] == ranker.score(["alpha"], "only")
            assert scores[1, 0] == ranker.score(["beta"], "only")


def _random_graph(rng: random.Random):
    builder = ReinforcementGraphBuilder()
    num_pages = rng.randint(1, 5)
    num_queries = rng.randint(1, 7)
    num_templates = rng.randint(0, 4)
    for p in range(num_pages):
        builder.add_page(f"p{p}")
    for q in range(num_queries):
        builder.add_query(f"q{q}")
    for t in range(num_templates):
        builder.add_template(f"t{t}")
    for p in range(num_pages):
        for q in range(num_queries):
            if rng.random() < 0.4:
                builder.connect_page_query(f"p{p}", f"q{q}",
                                           rng.choice([0.5, 1.0, 2.0]))
    for q in range(num_queries):
        for t in range(num_templates):
            if rng.random() < 0.3:
                builder.connect_query_template(f"q{q}", f"t{t}")
    return builder.build()


def _random_problem(rng: random.Random, graph) -> RegularizationProblem:
    def layer(index, probability):
        if rng.random() > probability:
            return None
        return {key: rng.random() for key in index.keys()
                if rng.random() < 0.7}

    return RegularizationProblem(
        page_regularization=layer(graph.pages, 0.9),
        query_regularization=layer(graph.queries, 0.3),
        template_regularization=layer(graph.templates, 0.5),
    )


def _vectors_identical(left, right) -> bool:
    return (np.array_equal(left.page_values, right.page_values)
            and np.array_equal(left.query_values, right.query_values)
            and np.array_equal(left.template_values, right.template_values)
            and left.iterations == right.iterations
            and left.converged == right.converged)


class TestSolverEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_solve_joint_bit_identical_to_separate_solves(self, seed):
        rng = random.Random(seed)
        graph = _random_graph(rng)
        solver = UtilitySolver(graph)
        precision_problems = [_random_problem(rng, graph)
                              for _ in range(rng.randint(0, 2))]
        recall_problems = [_random_problem(rng, graph)
                           for _ in range(rng.randint(1, 4))]
        joint_p, joint_r = solver.solve_joint(precision_problems,
                                              recall_problems)
        for mode, problems, joint in ((MODE_PRECISION, precision_problems,
                                       joint_p),
                                      (MODE_RECALL, recall_problems, joint_r)):
            assert len(joint) == len(problems)
            for problem, vector in zip(problems, joint):
                single = UtilitySolver(graph).solve(
                    mode,
                    page_regularization=problem.page_regularization,
                    query_regularization=problem.query_regularization,
                    template_regularization=problem.template_regularization)
                assert _vectors_identical(vector, single), (seed, mode)

    @pytest.mark.parametrize("seed", range(4))
    def test_duplicated_problems_converge_identically(self, seed):
        # Column freezing must not couple columns: solving [a, a] gives two
        # bit-identical results.
        rng = random.Random(50 + seed)
        graph = _random_graph(rng)
        problem = _random_problem(rng, graph)
        first, second = UtilitySolver(graph).solve_many(
            MODE_RECALL, [problem, problem])
        assert _vectors_identical(first, second)

    def test_known_fixed_point_single_edge(self):
        # One page, one query, p_hat = 1: the iteration alternates
        # u_q <- 0.85 u_p and u_p <- 0.85 u_q + 0.15, whose fixed point is
        # u_p = 0.15 / (1 - 0.85^2), u_q = 0.85 u_p.
        builder = ReinforcementGraphBuilder()
        builder.connect_page_query("p", "q", 1.0)
        solver = UtilitySolver(builder.build(), alpha=0.15)
        solved = solver.solve_precision(page_regularization={"p": 1.0})
        assert solved.converged
        expected_page = 0.15 / (1.0 - 0.85 ** 2)
        assert solved.page("p") == pytest.approx(expected_page, abs=1e-4)
        assert solved.query("q") == pytest.approx(0.85 * expected_page,
                                                  abs=1e-4)

    def test_empty_problem_list_returns_empty(self):
        builder = ReinforcementGraphBuilder()
        builder.connect_page_query("p", "q", 1.0)
        solver = UtilitySolver(builder.build())
        assert solver.solve_many(MODE_RECALL, []) == []
        precision, recall = solver.solve_joint([], [])
        assert precision == [] and recall == []


class _CrossCheckingSelection(ContextAwareSelection):
    """ContextAwareSelection that cross-checks every vectorized choice
    against the scalar reference implementation in situ."""

    def __init__(self, objective: str) -> None:
        super().__init__(objective)
        self.comparisons = 0

    def _choose(self, session, utilities, candidates, penalty):
        chosen = super()._choose(session, utilities, candidates, penalty)
        reference = self._choose_scalar(session, utilities, candidates,
                                        penalty)
        assert chosen == reference, \
            f"vectorized choice {chosen!r} != scalar choice {reference!r}"
        self.comparisons += 1
        return chosen


class TestSelectorEquivalence:
    @pytest.mark.parametrize("objective,method", [("precision", "L2QP"),
                                                  ("recall", "L2QR"),
                                                  ("balanced", "L2QBAL")])
    def test_choose_matches_scalar_reference_during_harvest(
            self, researcher_runner, researcher_prepared, objective, method):
        job = researcher_runner.build_job(
            researcher_prepared, method,
            researcher_prepared.split.test_entities[0], "RESEARCH", 3)
        selector = _CrossCheckingSelection(objective)
        harvester = researcher_runner.harvester_for(researcher_prepared)
        result = harvester.harvest(job.entity_id, job.aspect, selector,
                                   job.relevance, num_queries=job.num_queries,
                                   domain_model=job.domain_model,
                                   seed=job.seed)
        assert selector.comparisons >= 1
        assert result.iterations

    def test_choose_empty_candidates_returns_none(self):
        selector = ContextAwareSelection("precision")
        assert selector._choose(None, None, [], 0.0) is None


class TestAssembledGraphTemplates:
    def test_templates_attribute_is_a_materialised_list(self):
        # Regression: ``AssembledGraph.templates`` was once the live
        # ``dict_keys`` view of the vertex index — iterable exactly once and
        # mutated under the caller's feet by later vertex registration.  It
        # must be a plain list, aligned with the template vertex order.
        from tests.helpers import make_page

        type_system = build_type_system({"person": ["smith"]})
        pages = [make_page("p0", "e1", [(["smith", "essay"], "RESEARCH")])]
        assembled = GraphAssembler(type_system).assemble(
            pages, [("smith", "essay")], use_templates=True)
        assert isinstance(assembled.templates, list)
        assert assembled.templates == list(assembled.graph.templates.keys())
        assert len(assembled.templates) >= 1
        # A list survives repeated iteration (a consumed iterator would not).
        assert list(assembled.templates) == list(assembled.templates)
