"""Tests for the document data model (paragraphs, pages, entities)."""

from tests.helpers import make_page, make_paragraph

from repro.corpus.document import Entity


class TestParagraph:
    def test_text_replaces_underscores(self):
        para = make_paragraph("p#0", ["data_mining", "papers"], "RESEARCH")
        assert para.text == "data mining papers"

    def test_len(self):
        assert len(make_paragraph("p#0", ["a", "b", "c"])) == 3

    def test_default_aspect_none(self):
        assert make_paragraph("p#0", ["a"]).aspect is None


class TestPage:
    def test_tokens_concatenate_paragraphs(self):
        page = make_page("p1", "e1", [(["a", "b"], "X"), (["c"], None)])
        assert page.tokens == ("a", "b", "c")

    def test_token_set(self):
        page = make_page("p1", "e1", [(["a", "b", "a"], None)])
        assert page.token_set == frozenset({"a", "b"})

    def test_aspects_excludes_none(self):
        page = make_page("p1", "e1", [(["a"], "X"), (["b"], None), (["c"], "Y")])
        assert page.aspects() == frozenset({"X", "Y"})

    def test_has_aspect(self):
        page = make_page("p1", "e1", [(["a"], "X")])
        assert page.has_aspect("X")
        assert not page.has_aspect("Y")

    def test_contains_all(self):
        page = make_page("p1", "e1", [(["a", "b"], None), (["c"], None)])
        assert page.contains_all(["a", "c"])
        assert not page.contains_all(["a", "z"])

    def test_contains_all_empty_query(self):
        page = make_page("p1", "e1", [(["a"], None)])
        assert page.contains_all([])

    def test_len_counts_all_tokens(self):
        page = make_page("p1", "e1", [(["a", "b"], None), (["c"], None)])
        assert len(page) == 3

    def test_text_joins_paragraphs(self):
        page = make_page("p1", "e1", [(["a_b"], None), (["c"], None)])
        assert page.text == "a b\nc"


class TestEntity:
    def _entity(self):
        return Entity(
            entity_id="e1",
            domain="researcher",
            name_tokens=("marc", "snir"),
            seed_query=("marc", "snir", "uiuc"),
            attributes={"topic": ("hpc", "parallel"), "institute": ("uiuc",)},
        )

    def test_name(self):
        assert self._entity().name == "marc snir"

    def test_attribute_values(self):
        entity = self._entity()
        assert entity.attribute_values("topic") == ("hpc", "parallel")
        assert entity.attribute_values("missing") == ()

    def test_all_attribute_words(self):
        assert self._entity().all_attribute_words() == frozenset({"hpc", "parallel", "uiuc"})

    def test_hashable(self):
        assert len({self._entity(), self._entity()}) == 1
