"""Property-based tests (hypothesis) on core data structures and invariants."""

import random
import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateStatistics
from repro.corpus.document import Page, Paragraph
from repro.corpus.knowledge_base import TypeSystem, build_type_system
from repro.corpus.synthetic import CorpusConfig, CorpusGenerator
from repro.corpus.vocabulary import Vocabulary
from repro.core.queries import QueryEnumerator, QueryStatistics
from repro.core.templates import abstract_query, template_abstracts
from repro.eval.metrics import HarvestMetrics, compute_metrics
from repro.eval.splits import split_entities
from repro.graph.random_walk import UtilitySolver
from repro.graph.reinforcement import ReinforcementGraphBuilder
from repro.scenarios import make_scenario, scenario_names
from repro.search.index import InvertedIndex
from repro.search.language_model import DirichletLanguageModel

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])
#: Heavier generators (full corpus generation per example) get fewer examples.
SLOW_SETTINGS = settings(max_examples=8, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
documents = st.lists(st.lists(words, min_size=0, max_size=12), min_size=0, max_size=8)
page_ids = st.lists(st.text(alphabet=string.ascii_lowercase + string.digits,
                            min_size=1, max_size=5), min_size=1, max_size=20, unique=True)


class TestVocabularyProperties:
    @SETTINGS
    @given(documents)
    def test_counts_are_consistent(self, docs):
        vocab = Vocabulary.from_documents(docs)
        total_tokens = sum(len(d) for d in docs)
        assert vocab.num_tokens == total_tokens
        assert sum(vocab.term_frequency(w) for w in vocab) == total_tokens
        for word in vocab:
            assert 1 <= vocab.document_frequency(word) <= max(len(docs), 1)

    @SETTINGS
    @given(documents)
    def test_collection_probabilities_sum_to_one(self, docs):
        vocab = Vocabulary.from_documents(docs)
        if vocab.num_tokens == 0:
            return
        assert sum(vocab.collection_probability(w) for w in vocab) == pytest.approx(1.0)


class TestMetricsProperties:
    @SETTINGS
    @given(st.lists(words, max_size=20), st.lists(words, max_size=20))
    def test_metrics_bounded(self, gathered, relevant):
        metrics = compute_metrics(gathered, relevant)
        assert 0.0 <= metrics.precision <= 1.0
        assert 0.0 <= metrics.recall <= 1.0
        assert 0.0 <= metrics.f_score <= 1.0
        assert metrics.f_score <= max(metrics.precision, metrics.recall) + 1e-12

    @SETTINGS
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0),
           st.floats(0.001, 1.0), st.floats(0.001, 1.0))
    def test_normalisation_bounded_with_cap(self, p, r, ip, ir):
        normalised = HarvestMetrics(p, r).normalized_by(HarvestMetrics(ip, ir))
        assert 0.0 <= normalised.precision <= 1.0
        assert 0.0 <= normalised.recall <= 1.0


class TestSplitProperties:
    @SETTINGS
    @given(st.lists(st.integers(0, 10_000).map(lambda i: f"e{i}"),
                    min_size=1, max_size=60, unique=True),
           st.integers(0, 100))
    def test_split_partitions_entities(self, entity_ids, seed):
        split = split_entities(entity_ids, seed=seed)
        parts = (set(split.domain_entities), set(split.validation_entities),
                 set(split.test_entities))
        assert parts[0] | parts[1] | parts[2] == set(entity_ids)
        assert sum(len(p) for p in parts) == len(entity_ids)


class TestQueryEnumerationProperties:
    @SETTINGS
    @given(st.lists(words, max_size=20), st.integers(1, 4))
    def test_windows_respect_length_and_content(self, tokens, max_length):
        enumerator = QueryEnumerator(max_length=max_length, min_word_length=1)
        counts = enumerator.enumerate_from_tokens(tokens)
        usable = [t for t in tokens if enumerator.is_usable_word(t)]
        for query, count in counts.items():
            assert 1 <= len(query) <= max_length
            assert count >= 1
            for word in query:
                assert word in usable


class TestTemplateProperties:
    @SETTINGS
    @given(st.lists(st.sampled_from(["hpc", "ai", "tkde", "jmlr", "paper", "about"]),
                    min_size=1, max_size=3, unique=True))
    def test_every_generated_template_abstracts_its_query(self, query_words):
        system = build_type_system({"topic": ["hpc", "ai"], "journal": ["tkde", "jmlr"]})
        query = tuple(query_words)
        for template in abstract_query(query, system):
            assert template_abstracts(template, query, system)
            assert len(template) == len(query)


class TestLanguageModelProperties:
    @SETTINGS
    @given(documents.filter(lambda docs: any(len(d) > 0 for d in docs)),
           st.lists(words, min_size=1, max_size=3))
    def test_ranking_is_sorted_and_matching_only(self, docs, query):
        index = InvertedIndex.from_documents(
            {f"d{i}": tokens for i, tokens in enumerate(docs) if tokens})
        model = DirichletLanguageModel(index, mu=50.0)
        ranked = model.rank(query)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)
        matching = index.matching_documents(query)
        assert {d for d, _ in ranked} == matching


class TestSolverProperties:
    @SETTINGS
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=1, max_size=20),
           st.floats(0.05, 0.9))
    def test_utilities_bounded_by_regularization_maximum(self, edges, alpha):
        builder = ReinforcementGraphBuilder()
        for page_index, query_index in edges:
            builder.connect_page_query(f"p{page_index}", (f"q{query_index}",))
        graph = builder.build()
        regularization = {f"p{i}": 1.0 for i in range(6)}
        solver = UtilitySolver(graph, alpha=alpha, max_iterations=300)
        result = solver.solve_precision(page_regularization=regularization)
        assert result.page_values.max(initial=0.0) <= 1.0 + 1e-9
        assert result.query_values.max(initial=0.0) <= 1.0 + 1e-9
        assert result.page_values.min(initial=0.0) >= -1e-9
        assert result.query_values.min(initial=0.0) >= -1e-9

    @SETTINGS
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                    min_size=1, max_size=15))
    def test_recall_mass_conserved_within_tolerance(self, edges):
        # The total recall mass injected by the regularization cannot be
        # amplified by the propagation (it is only redistributed / damped).
        builder = ReinforcementGraphBuilder()
        for page_index, query_index in edges:
            builder.connect_page_query(f"p{page_index}", (f"q{query_index}",))
        graph = builder.build()
        pages = graph.pages.keys()
        regularization = {p: 1.0 / len(pages) for p in pages}
        solver = UtilitySolver(graph, alpha=0.15, max_iterations=300)
        result = solver.solve_recall(page_regularization=regularization)
        assert result.query_values.sum() <= 1.0 + 1e-6
        assert result.page_values.sum() <= 1.0 + 1e-6


def _pages_from_docs(docs):
    """Build one-paragraph pages (cycled over two entities) from token lists."""
    pages = []
    for index, tokens in enumerate(docs):
        page_id = f"p{index}"
        pages.append(Page(
            page_id=page_id,
            entity_id=f"e{index % 2}",
            paragraphs=(Paragraph(paragraph_id=f"{page_id}#0",
                                  tokens=tuple(tokens)),),
        ))
    return pages


class TestCandidateStatisticsProperties:
    @SETTINGS
    @given(documents, st.integers(0, 2**32 - 1))
    def test_incremental_folding_equals_scratch_for_any_arrival_order(
            self, docs, order_seed):
        # The paper's amortised selection rests on this invariant: folding
        # pages one at a time, in *any* arrival order, must produce exactly
        # the statistics of a from-scratch enumeration over the working set.
        enumerator = QueryEnumerator(max_length=3, min_word_length=1)
        pages = _pages_from_docs(docs)

        arrival = list(pages)
        random.Random(order_seed).shuffle(arrival)
        incremental = CandidateStatistics(enumerator)
        incremental.add_pages(arrival)
        # Re-adding in a different order must be a no-op (pages are deduped).
        assert incremental.add_pages(pages) == 0

        scratch = QueryStatistics()
        for page in pages:
            for query, count in enumerator.enumerate_from_page(page).items():
                scratch.record(query, page.page_id, page.entity_id, count)

        assert incremental.statistics.occurrences == scratch.occurrences
        assert dict(incremental.statistics.pages) == dict(scratch.pages)
        assert dict(incremental.statistics.entities) == dict(scratch.entities)
        assert incremental.num_pages == len(pages)
        assert sorted(incremental.sorted_queries()) == sorted(scratch.occurrences)


class TestScenarioGenerationProperties:
    @SLOW_SETTINGS
    @given(st.integers(0, 2**31 - 1), st.sampled_from(sorted(scenario_names())))
    def test_equal_seeds_give_byte_identical_corpora(self, seed, scenario):
        # Two *fresh* generators (no shared state) with the same seed must
        # produce byte-identical corpora for every registered scenario.
        spec = make_scenario(scenario)
        config = spec.build_config("researcher", num_entities=5,
                                   pages_per_entity=4, seed=seed)
        first = CorpusGenerator(config).generate()
        second = CorpusGenerator(config).generate()
        assert first.content_digest() == second.content_digest()
        assert first.entities == second.entities
        assert first.pages == second.pages

    @SLOW_SETTINGS
    @given(st.integers(0, 2**31 - 1))
    def test_different_seeds_give_different_corpora(self, seed):
        kwargs = dict(domain="researcher", num_entities=5, pages_per_entity=4)
        first = CorpusGenerator(CorpusConfig(seed=seed, **kwargs)).generate()
        second = CorpusGenerator(CorpusConfig(seed=seed + 1, **kwargs)).generate()
        assert first.content_digest() != second.content_digest()


class TestTypeSystemProperties:
    @SETTINGS
    @given(st.dictionaries(st.sampled_from(["topic", "journal", "award"]),
                           st.lists(words, min_size=1, max_size=5), min_size=1))
    def test_every_registered_word_is_typed(self, dictionary):
        system = build_type_system(dictionary)
        for type_name, members in dictionary.items():
            for word in members:
                assert type_name in system.types_of(TypeSystem.canonical(word))
