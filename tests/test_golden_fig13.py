"""Golden-snapshot regression test for the headline experiment (Fig. 13).

The smoke-scale Fig. 13 result is pinned as JSON under ``tests/data/``.
Every part of the pipeline feeds into these numbers — corpus generation,
splits, classifier training, domain phase, selection, retrieval, metric
folding — so any refactor that silently drifts the headline comparison
fails here with an exact diff instead of passing on "close enough".

If a change *intentionally* alters the numbers (new algorithm, fixed bug),
regenerate the snapshot and justify the new values in the PR::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.eval.experiments import SMOKE_SCALE, run_fig13
    payload = run_fig13(SMOKE_SCALE).to_json_dict()
    with open("tests/data/fig13_smoke_golden.json", "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    PY
"""

import json
from pathlib import Path

from repro.eval.experiments import SMOKE_SCALE, run_fig13

GOLDEN_PATH = Path(__file__).parent / "data" / "fig13_smoke_golden.json"


def test_fig13_smoke_matches_golden_snapshot():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    # Round-trip through JSON so float representations are compared the
    # same way on both sides (json round-trips IEEE doubles exactly).
    actual = json.loads(json.dumps(run_fig13(SMOKE_SCALE).to_json_dict()))
    assert actual == golden, (
        "Fig. 13 smoke-scale output drifted from the golden snapshot; "
        "if the change is intentional, regenerate "
        "tests/data/fig13_smoke_golden.json (see module docstring)")


def test_golden_snapshot_has_expected_shape():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert set(golden["series_by_domain"]) == {"researcher", "car"}
    for series in golden["series_by_domain"].values():
        assert "L2QBAL" in series and "MQ" in series
        for method_series in series.values():
            assert set(method_series) == {"precision", "recall", "f_score"}
