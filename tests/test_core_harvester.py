"""Tests for the iterative harvesting loop (Fig. 1)."""

import pytest

from repro.core.config import L2QConfig
from repro.core.harvester import Harvester
from repro.core.queries import Query
from repro.core.selection import QuerySelector, make_selector
from repro.search.engine import SearchEngine


class ScriptedSelector(QuerySelector):
    """Fires a fixed list of queries (test double)."""

    name = "SCRIPTED"

    def __init__(self, queries):
        self.queries = list(queries)
        self.prepared = False
        self.observed = []

    def prepare(self, session):
        self.prepared = True

    def select(self, session):
        if not self.queries:
            return None
        return self.queries.pop(0)

    def observe(self, session, query, new_pages):
        self.observed.append((query, tuple(p.page_id for p in new_pages)))


@pytest.fixture()
def harvester(researcher_corpus):
    engine = SearchEngine(researcher_corpus, top_k=5)
    return Harvester(researcher_corpus, engine, L2QConfig())


@pytest.fixture()
def target(researcher_corpus, researcher_prepared):
    entity_id = researcher_prepared.split.test_entities[0]
    return entity_id, researcher_prepared.relevance_by_aspect["RESEARCH"]


class TestHarvestLoop:
    def test_seed_results_always_gathered(self, harvester, target):
        entity_id, relevance = target
        result = harvester.harvest(entity_id, "RESEARCH", ScriptedSelector([]),
                                   relevance, num_queries=3)
        assert result.seed_page_ids
        assert result.num_queries == 0
        assert result.gathered_after(0) == result.seed_page_ids

    def test_budget_respected(self, harvester, target):
        entity_id, relevance = target
        selector = ScriptedSelector([("research",), ("papers",), ("award",), ("extra",)])
        result = harvester.harvest(entity_id, "RESEARCH", selector, relevance,
                                   num_queries=2)
        assert result.num_queries == 2
        assert result.queries() == [("research",), ("papers",)]

    def test_stops_early_when_selector_returns_none(self, harvester, target):
        entity_id, relevance = target
        selector = ScriptedSelector([("research",)])
        result = harvester.harvest(entity_id, "RESEARCH", selector, relevance,
                                   num_queries=5)
        assert result.num_queries == 1

    def test_lifecycle_hooks_called(self, harvester, target):
        entity_id, relevance = target
        selector = ScriptedSelector([("research",), ("papers",)])
        result = harvester.harvest(entity_id, "RESEARCH", selector, relevance,
                                   num_queries=2)
        assert selector.prepared
        assert len(selector.observed) == result.num_queries

    def test_gathered_after_is_cumulative_and_deduplicated(self, harvester, target):
        entity_id, relevance = target
        selector = ScriptedSelector([("research",), ("research", "papers")])
        result = harvester.harvest(entity_id, "RESEARCH", selector, relevance,
                                   num_queries=2)
        after_one = result.gathered_after(1)
        after_two = result.gathered_after(2)
        assert set(after_one) <= set(after_two)
        assert len(after_two) == len(set(after_two))
        assert result.gathered_after(None) == after_two

    def test_iteration_records_track_results(self, harvester, target):
        entity_id, relevance = target
        selector = ScriptedSelector([("research",)])
        result = harvester.harvest(entity_id, "RESEARCH", selector, relevance,
                                   num_queries=1)
        record = result.iterations[0]
        assert record.query == ("research",)
        assert set(record.new_page_ids) <= set(record.result_page_ids)
        assert record.selection_seconds >= 0.0
        assert record.fetch_seconds >= 0.0

    def test_timing_categories_populated(self, harvester, target):
        entity_id, relevance = target
        selector = ScriptedSelector([("research",), ("papers",)])
        result = harvester.harvest(entity_id, "RESEARCH", selector, relevance,
                                   num_queries=2)
        assert result.timing.count("selection") == 2
        assert result.timing.count("fetch") == 3  # seed + two queries
        assert result.average_fetch_seconds() > 0.0
        assert result.average_selection_seconds() >= 0.0

    def test_unknown_entity_raises(self, harvester, target):
        _, relevance = target
        with pytest.raises(KeyError):
            harvester.harvest("ghost", "RESEARCH", ScriptedSelector([]), relevance)

    def test_full_l2qbal_harvest_round_trip(self, researcher_corpus, researcher_prepared):
        engine = researcher_prepared.engine
        harvester = Harvester(researcher_corpus, engine, L2QConfig())
        entity_id = researcher_prepared.split.test_entities[0]
        result = harvester.harvest(
            entity_id, "RESEARCH", make_selector("L2QBAL"),
            researcher_prepared.relevance_by_aspect["RESEARCH"], num_queries=2,
            domain_model=researcher_prepared.domain_model("RESEARCH"))
        assert result.num_queries == 2
        assert len(result.gathered_after(2)) >= len(result.seed_page_ids)
        assert result.selector_name == "L2QBAL"
