"""Tests for the relevance functions Y."""

from tests.helpers import make_page

from repro.aspects.classifier import AspectClassifierSuite
from repro.aspects.relevance import AllRelevant, ClassifierRelevance, OracleRelevance


class TestOracleRelevance:
    def test_matches_ground_truth_labels(self):
        page = make_page("p1", "e1", [(["award", "received"], "AWARD")])
        assert OracleRelevance("AWARD")(page) == 1
        assert OracleRelevance("RESEARCH")(page) == 0

    def test_score_equals_label(self):
        page = make_page("p1", "e1", [(["award"], "AWARD")])
        assert OracleRelevance("AWARD").score(page) == 1.0


class TestAllRelevant:
    def test_everything_relevant(self):
        page = make_page("p1", "e1", [(["anything"], None)])
        y_star = AllRelevant()
        assert y_star(page) == 1
        assert y_star.score(page) == 1.0


class TestClassifierRelevance:
    def test_labels_binary_and_cached(self, researcher_corpus):
        suite = AspectClassifierSuite.train_on_corpus(researcher_corpus, seed=3)
        relevance = ClassifierRelevance("RESEARCH", suite)
        page = next(researcher_corpus.iter_pages())
        first = relevance(page)
        assert first in (0, 1)
        assert relevance(page) == first
        assert page.page_id in relevance._label_cache

    def test_score_in_unit_interval(self, researcher_corpus):
        suite = AspectClassifierSuite.train_on_corpus(researcher_corpus, seed=3)
        relevance = ClassifierRelevance("CONTACT", suite)
        for page in list(researcher_corpus.iter_pages())[:10]:
            assert 0.0 <= relevance.score(page) <= 1.0
