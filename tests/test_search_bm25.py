"""Tests for the BM25 ranker."""

import pytest

from repro.search.bm25 import BM25Ranker
from repro.search.index import InvertedIndex


@pytest.fixture()
def index():
    return InvertedIndex.from_documents({
        "d1": ["parallel", "hpc", "parallel", "systems"],
        "d2": ["parallel", "office"],
        "d3": ["email", "contact", "office", "phone"],
    })


@pytest.fixture()
def ranker(index):
    return BM25Ranker(index)


class TestParameters:
    def test_invalid_k1(self, index):
        with pytest.raises(ValueError):
            BM25Ranker(index, k1=-1.0)

    def test_invalid_b(self, index):
        with pytest.raises(ValueError):
            BM25Ranker(index, b=1.5)


class TestScoring:
    def test_idf_zero_for_unknown_term(self, ranker):
        assert ranker.idf("banana") == 0.0

    def test_idf_decreases_with_document_frequency(self, ranker):
        assert ranker.idf("email") > ranker.idf("parallel")

    def test_score_zero_when_no_terms_match(self, ranker):
        assert ranker.score(["banana"], "d1") == 0.0

    def test_higher_tf_scores_higher(self, ranker):
        assert ranker.score(["parallel"], "d1") > ranker.score(["parallel"], "d2")

    def test_unknown_document_raises(self, ranker):
        with pytest.raises(KeyError):
            ranker.score(["parallel"], "missing")


class TestRanking:
    def test_rank_order(self, ranker):
        ranked = ranker.rank(["parallel", "hpc"])
        assert ranked[0][0] == "d1"

    def test_require_match(self, ranker):
        ranked = ranker.rank(["email"])
        assert [d for d, _ in ranked] == ["d3"]

    def test_top_k(self, ranker):
        assert len(ranker.rank(["parallel"], top_k=1)) == 1

    def test_retrieval_scores_normalised(self, ranker):
        scores = ranker.retrieval_scores(["parallel"])
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_empty_query(self, ranker):
        assert ranker.rank([]) == []
        assert ranker.retrieval_scores([]) == {}
