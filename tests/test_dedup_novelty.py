"""Tests for the novelty estimator and the duplicate-waste scorer."""

import pytest

from repro.core.config import L2QConfig
from repro.core.harvester import HarvestResult, IterationRecord
from repro.dedup.novelty import NoveltyEstimator
from repro.dedup.waste import DuplicateWasteScorer
from repro.scenarios import make_scenario
from repro.search.engine import SearchEngine


@pytest.fixture(scope="module")
def dup_corpus():
    """Every page has one near-identical copy (tiny token noise)."""
    return make_scenario("near-duplicates", fraction=1.0,
                         token_noise=0.02).corpus_for(
        "researcher", num_entities=6, pages_per_entity=4, seed=5)


@pytest.fixture(scope="module")
def dup_target(dup_corpus):
    for entity_id in dup_corpus.entity_ids():
        page_ids = sorted(p.page_id for p in dup_corpus.pages_of(entity_id))
        dups = [p for p in page_ids if "_dup" in p]
        if dups:
            source_id = dups[0].split("_dup")[0]
            return entity_id, source_id, dups[0]
    pytest.fail("no duplicate page generated")


@pytest.fixture()
def estimator(dup_corpus, dup_target):
    entity_id = dup_target[0]
    engine = SearchEngine(dup_corpus, top_k=5)
    return NoveltyEstimator(corpus=dup_corpus, engine=engine,
                            entity=dup_corpus.get_entity(entity_id),
                            config=L2QConfig(dedup_penalty=0.5))


class TestNoveltyEstimator:
    def test_unseen_page_fully_novel(self, estimator, dup_target):
        _, source_id, _ = dup_target
        assert estimator.page_novelty(source_id) == 1.0

    def test_near_copy_of_gathered_page_not_novel(self, dup_corpus, estimator,
                                                  dup_target):
        _, source_id, dup_id = dup_target
        estimator.observe_page(dup_corpus.get_page(source_id))
        assert estimator.page_novelty(dup_id) < 0.5
        assert estimator.page_novelty(source_id) == 0.0  # exact copy of itself

    def test_novelty_cache_invalidated_by_new_pages(self, dup_corpus,
                                                    estimator, dup_target):
        _, source_id, dup_id = dup_target
        before = estimator.page_novelty(dup_id)
        estimator.observe_page(dup_corpus.get_page(source_id))
        assert estimator.page_novelty(dup_id) < before

    def test_expected_novelty_zero_when_all_postings_gathered(
            self, dup_corpus, estimator, dup_target):
        entity_id, source_id, _ = dup_target
        pages = dup_corpus.pages_of(entity_id)
        estimator.observe_pages(pages)
        query = tuple(dup_corpus.get_page(source_id).tokens[:1])
        assert estimator.expected_novelty(query, lambda pid: True) == 0.0

    def test_expected_novelty_one_without_postings(self, estimator):
        assert estimator.expected_novelty(("nosuchword",),
                                          lambda pid: False) == 1.0

    def test_expected_novelty_one_on_fresh_session(self, estimator, dup_corpus,
                                                   dup_target):
        # Nothing gathered yet: every posting page is fully novel.
        _, source_id, _ = dup_target
        query = tuple(dup_corpus.get_page(source_id).tokens[:1])
        assert estimator.expected_novelty(query, lambda pid: False) == 1.0


def _result(seed_ids, iteration_page_ids):
    result = HarvestResult(entity_id="e", aspect="A", selector_name="T",
                           seed_page_ids=list(seed_ids))
    for index, page_ids in enumerate(iteration_page_ids):
        result.iterations.append(IterationRecord(
            index=index, query=("q", str(index)),
            result_page_ids=tuple(page_ids), new_page_ids=(),
            selection_seconds=0.0, simulated_fetch_seconds=0.0))
    return result


class TestDuplicateWasteScorer:
    def test_refetches_count_as_waste(self, dup_corpus, dup_target):
        entity_id, source_id, _ = dup_target
        other = next(p.page_id for p in dup_corpus.pages_of(entity_id)
                     if p.page_id != source_id and "_dup" not in p.page_id)
        scorer = DuplicateWasteScorer(dup_corpus)
        result = _result([source_id], [(source_id, other)])
        assert scorer.waste(result) == pytest.approx(1 / 3)

    def test_near_duplicates_count_as_waste(self, dup_corpus, dup_target):
        _, source_id, dup_id = dup_target
        scorer = DuplicateWasteScorer(dup_corpus)
        result = _result([source_id], [(dup_id,)])
        assert scorer.waste(result) == pytest.approx(1 / 2)

    def test_budget_prefix_respected(self, dup_corpus, dup_target):
        entity_id, source_id, _ = dup_target
        scorer = DuplicateWasteScorer(dup_corpus)
        result = _result([source_id], [(source_id,)])
        assert scorer.waste(result, num_queries=0) == 0.0
        assert scorer.waste(result, num_queries=1) == pytest.approx(1 / 2)

    def test_empty_run_scores_zero(self, dup_corpus):
        scorer = DuplicateWasteScorer(dup_corpus)
        assert scorer.waste(_result([], [])) == 0.0

    def test_waste_by_budget_matches_per_budget_replay(self, dup_corpus,
                                                       dup_target):
        # The single-pass profile must read off exactly what an independent
        # per-budget replay computes.
        entity_id, source_id, dup_id = dup_target
        other = next(p.page_id for p in dup_corpus.pages_of(entity_id)
                     if p.page_id != source_id and "_dup" not in p.page_id)
        scorer = DuplicateWasteScorer(dup_corpus)
        result = _result([source_id], [(source_id, other), (dup_id,)])
        budgets = (0, 1, 2, 5)  # 5 exceeds the run's two iterations
        profile = scorer.waste_by_budget(result, budgets)
        assert profile == {k: scorer.waste(result, k) for k in budgets}
        assert profile[5] == profile[2]  # stream simply ends early
