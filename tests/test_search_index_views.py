"""Tests for entity-scoped views of the shared corpus index.

The refactored engine indexes the corpus once and serves every entity
through an :class:`IndexView`; these tests pin the core invariant that a
view is statistically indistinguishable from a from-scratch per-entity
:class:`InvertedIndex`.
"""

import pytest

from repro.search.engine import SearchEngine
from repro.search.index import IndexView, InvertedIndex

DOCUMENTS = {
    "a1": ["parallel", "hpc", "research", "parallel"],
    "a2": ["data", "mining", "research"],
    "b1": ["hpc", "systems", "award"],
    "b2": ["award", "ceremony", "award"],
}
SUBSET = ("a1", "a2")


@pytest.fixture()
def parent():
    return InvertedIndex.from_documents(DOCUMENTS)


@pytest.fixture()
def view(parent):
    return parent.view(SUBSET)


@pytest.fixture()
def scratch():
    return InvertedIndex.from_documents({d: DOCUMENTS[d] for d in SUBSET})


class TestViewMatchesScratchIndex:
    def test_document_statistics(self, view, scratch):
        assert view.num_documents == scratch.num_documents
        assert view.total_tokens == scratch.total_tokens
        assert view.average_document_length == pytest.approx(
            scratch.average_document_length)
        assert view.document_ids() == scratch.document_ids()

    def test_document_lengths(self, view, scratch):
        for doc_id in SUBSET:
            assert view.document_length(doc_id) == scratch.document_length(doc_id)

    def test_term_statistics_over_full_vocabulary(self, parent, view, scratch):
        for term in parent.vocabulary():
            assert view.document_frequency(term) == scratch.document_frequency(term)
            assert view.collection_frequency(term) == scratch.collection_frequency(term)
            assert view.collection_probability(term) == pytest.approx(
                scratch.collection_probability(term))
            assert view.postings(term) == scratch.postings(term)
            for doc_id in SUBSET:
                assert view.term_frequency(term, doc_id) == \
                    scratch.term_frequency(term, doc_id)

    def test_vocabulary_restricted(self, view, scratch):
        assert view.vocabulary() == scratch.vocabulary()
        assert "ceremony" not in view.vocabulary()

    def test_matching_documents(self, view, scratch):
        for terms in (["hpc"], ["research", "data"], ["award"], ["hpc", "research"]):
            assert view.matching_documents(terms) == scratch.matching_documents(terms)
            assert view.matching_documents(terms, require_all=True) == \
                scratch.matching_documents(terms, require_all=True)
        assert view.matching_documents([]) == set()


class TestViewBoundaries:
    def test_membership(self, view):
        assert "a1" in view
        assert "b1" not in view

    def test_outside_document_rejected(self, view):
        with pytest.raises(KeyError):
            view.document_length("b1")
        assert view.term_frequency("hpc", "b1") == 0

    def test_unknown_document_in_view_spec_rejected(self, parent):
        with pytest.raises(KeyError):
            parent.view(["a1", "ghost"])

    def test_empty_view(self, parent):
        empty = parent.view([])
        assert empty.num_documents == 0
        assert empty.average_document_length == 0.0
        assert empty.collection_probability("hpc") == 0.0


class TestEngineSharedIndex:
    def test_exactly_one_corpus_index_built(self, researcher_corpus):
        engine = SearchEngine(researcher_corpus)
        assert engine.index_builds == 0
        for entity_id in researcher_corpus.entity_ids():
            engine.search(entity_id, ["research"])
        assert engine.index_builds == 1

    def test_entity_view_matches_scratch_entity_index(self, researcher_corpus):
        engine = SearchEngine(researcher_corpus)
        entity_id = researcher_corpus.entity_ids()[0]
        view = engine.entity_index(entity_id)
        assert isinstance(view, IndexView)
        scratch = InvertedIndex.from_documents(
            {p.page_id: p.tokens for p in researcher_corpus.pages_of(entity_id)})
        assert view.document_ids() == scratch.document_ids()
        assert view.total_tokens == scratch.total_tokens
        for term in scratch.vocabulary():
            assert view.collection_frequency(term) == scratch.collection_frequency(term)
            assert view.document_frequency(term) == scratch.document_frequency(term)
