"""Smoke-scale tests of the per-figure experiment entry points."""

import pytest

from repro.eval.experiments import (
    SMOKE_SCALE,
    ExperimentScale,
    get_scale,
    headline_summary,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig13,
    run_fig14,
)

#: An even smaller scale than SMOKE for unit tests of the experiment drivers.
TINY_SCALE = ExperimentScale(
    name="tiny",
    num_entities={"researcher": 12, "car": 12},
    pages_per_entity=8,
    num_splits=1,
    max_test_entities=1,
    max_aspects=1,
    num_queries_list=(2,),
)


class TestScales:
    def test_get_scale(self):
        assert get_scale("smoke") is SMOKE_SCALE
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_scale_builds_corpus(self):
        corpus = TINY_SCALE.corpus_for("researcher")
        assert corpus.num_entities() == 12
        assert TINY_SCALE.aspects_for(corpus) == corpus.aspects[:1]


class TestFig09:
    def test_rows_for_both_domains(self):
        result = run_fig09(TINY_SCALE)
        assert set(result.rows_by_domain) == {"researcher", "car"}
        for rows in result.rows_by_domain.values():
            assert len(rows) == 7
            for row in rows:
                assert 0.0 <= row.accuracy <= 1.0
                assert row.paragraph_frequency > 0

    def test_accuracy_lookup(self):
        result = run_fig09(TINY_SCALE, domains=("researcher",))
        assert result.accuracy("researcher", "RESEARCH") == \
            result.rows_by_domain["researcher"][
                [r.aspect for r in result.rows_by_domain["researcher"]].index("RESEARCH")
            ].accuracy
        assert result.mean_accuracy("researcher") > 0.5
        with pytest.raises(KeyError):
            result.accuracy("researcher", "HOBBY")


class TestFig10:
    def test_structure(self):
        result = run_fig10(TINY_SCALE, domains=("researcher",), num_queries=2)
        assert set(result.precision_by_domain["researcher"]) == {
            "RND", "P", "P+q", "P+t", "L2QP"}
        assert set(result.recall_by_domain["researcher"]) == {
            "RND", "R", "R+q", "R+t", "L2QR"}
        for value in result.precision_by_domain["researcher"].values():
            assert 0.0 <= value <= 1.0


class TestFig11:
    def test_fraction_sweep(self):
        result = run_fig11(TINY_SCALE, domains=("researcher",),
                           fractions=(0.0, 1.0), num_queries=2)
        assert set(result.precision_by_domain["researcher"]) == {0.0, 1.0}
        assert set(result.recall_by_domain["researcher"]) == {0.0, 1.0}
        assert result.fractions == (0.0, 1.0)


class TestFig13AndHeadline:
    def test_comparison_and_summary(self):
        result = run_fig13(TINY_SCALE, domains=("researcher",))
        series = result.series_by_domain["researcher"]
        assert set(series) == {"L2QBAL", "LM", "AQ", "HR", "MQ"}
        summary = headline_summary(result)
        assert summary.best_algorithmic_baseline in {"LM", "AQ", "HR"}
        assert 0.0 <= summary.l2qbal_f_score <= 1.0
        assert summary.manual_f_score >= 0.0


class TestFig14:
    def test_efficiency_report(self):
        result = run_fig14(TINY_SCALE, domains=("researcher",), methods=("L2QBAL",))
        report = result.reports_by_domain["researcher"]
        assert report.selection_seconds["L2QBAL"] >= 0.0
        assert report.fetch_seconds > 0.0
