"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_corpus_defaults(self):
        args = build_parser().parse_args(["corpus"])
        assert args.domain == "researcher"
        assert args.entities == 24

    def test_experiment_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_unknown_domain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["corpus", "--domain", "movies"])


class TestCorpusCommand:
    def test_prints_statistics(self):
        out = io.StringIO()
        code = main(["corpus", "--domain", "car", "--entities", "6", "--pages", "6"],
                    out=out)
        assert code == 0
        text = out.getvalue()
        assert "domain" in text and "car" in text
        assert "pages" in text


class TestHarvestCommand:
    def test_harvest_with_manual_queries(self):
        out = io.StringIO()
        code = main(["harvest", "--domain", "researcher", "--entities", "12",
                     "--pages", "8", "--method", "MQ", "--queries", "2",
                     "--aspect", "CONTACT"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "query #1" in text
        assert "f-score=" in text

    def test_unknown_aspect_fails(self):
        out = io.StringIO()
        code = main(["harvest", "--domain", "researcher", "--entities", "12",
                     "--pages", "8", "--aspect", "HOBBY"], out=out)
        assert code == 2
        assert "unknown aspect" in out.getvalue()

    def test_unknown_entity_fails(self):
        out = io.StringIO()
        code = main(["harvest", "--domain", "researcher", "--entities", "12",
                     "--pages", "8", "--entity", "ghost"], out=out)
        assert code == 2


class TestExperimentCommand:
    def test_fig09_smoke(self):
        out = io.StringIO()
        code = main(["experiment", "--figure", "fig09", "--scale", "smoke",
                     "--domains", "researcher"], out=out)
        assert code == 0
        assert "RESEARCH" in out.getvalue()


class TestScenariosCommand:
    def test_scenarios_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_list_prints_registered_scenarios(self):
        out = io.StringIO()
        code = main(["scenarios", "list"], out=out)
        assert code == 0
        text = out.getvalue()
        for name in ("zipf-skew", "near-duplicates", "cross-domain-bleed",
                     "aspect-dropout"):
            assert name in text
        assert "stages:" in text

    def test_run_writes_robustness_matrix(self, tmp_path):
        import json

        out = io.StringIO()
        output = tmp_path / "BENCH_scenarios.json"
        code = main(["scenarios", "run", "--scale", "smoke",
                     "--scenarios", "zipf-skew",
                     "--methods", "MQ",
                     "--domains", "researcher",
                     "--queries", "2",
                     "--output", str(output)], out=out)
        assert code == 0
        text = out.getvalue()
        assert "Robustness matrix" in text
        assert "zipf-skew" in text
        assert str(output) in text
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["scenarios"] == ["zipf-skew"]
        assert "MQ" in report["domains"]["researcher"]["scenarios"]["zipf-skew"]["f_delta"]

    def test_run_rejects_unknown_scenario(self, tmp_path):
        out = io.StringIO()
        code = main(["scenarios", "run", "--scenarios", "no-such-scenario",
                     "--output", str(tmp_path / "x.json")], out=out)
        assert code == 2
        assert "unknown scenario" in out.getvalue()

    def test_run_rejects_unknown_method(self, tmp_path):
        out = io.StringIO()
        code = main(["scenarios", "run", "--methods", "L2QBall",
                     "--output", str(tmp_path / "x.json")], out=out)
        assert code == 2
        assert "unknown methods" in out.getvalue()

    def test_run_reports_absolute_metrics(self, tmp_path):
        import json

        out = io.StringIO()
        output = tmp_path / "BENCH_scenarios.json"
        code = main(["scenarios", "run", "--scale", "smoke",
                     "--scenarios", "zipf-skew", "--methods", "MQ",
                     "--domains", "researcher", "--queries", "2",
                     "--output", str(output)], out=out)
        assert code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        cell = report["domains"]["researcher"]["scenarios"]["zipf-skew"]
        assert "absolute_metrics" in cell
        assert "absolute_f_delta" in cell
        assert "mean_absolute_f_delta" in report["summary"]["zipf-skew"]

    def test_param_grid_expands_scenarios(self, tmp_path):
        import json

        out = io.StringIO()
        output = tmp_path / "BENCH_scenarios.json"
        code = main(["scenarios", "run", "--scale", "smoke",
                     "--scenarios", "zipf-skew", "--methods", "MQ",
                     "--domains", "researcher", "--queries", "2",
                     "--param", "exponent=0.5,1.5",
                     "--output", str(output)], out=out)
        assert code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["scenarios"] == ["zipf-skew@exponent=0.5",
                                       "zipf-skew@exponent=1.5"]
        assert report["param_grid"] == {"param": "exponent",
                                        "values": [0.5, 1.5],
                                        "scenarios": ["zipf-skew"]}

    def test_param_requires_scenarios(self, tmp_path):
        out = io.StringIO()
        code = main(["scenarios", "run", "--param", "exponent=0.5",
                     "--output", str(tmp_path / "x.json")], out=out)
        assert code == 2
        assert "--param requires --scenarios" in out.getvalue()

    def test_param_rejects_unknown_parameter(self, tmp_path):
        out = io.StringIO()
        code = main(["scenarios", "run", "--scenarios", "zipf-skew",
                     "--param", "warp_factor=9",
                     "--output", str(tmp_path / "x.json")], out=out)
        assert code == 2
        assert "does not accept parameter" in out.getvalue()

    def test_param_rejects_malformed_grid(self, tmp_path):
        out = io.StringIO()
        code = main(["scenarios", "run", "--scenarios", "zipf-skew",
                     "--param", "exponent",
                     "--output", str(tmp_path / "x.json")], out=out)
        assert code == 2
        assert "NAME=V1,V2" in out.getvalue()


class TestDedupPenaltyArguments:
    def test_harvest_accepts_dedup_penalty(self):
        out = io.StringIO()
        code = main(["harvest", "--domain", "researcher", "--entities", "12",
                     "--pages", "8", "--method", "L2QBAL", "--queries", "2",
                     "--dedup-penalty", "0.5"], out=out)
        assert code == 0
        assert "f-score=" in out.getvalue()

    def test_out_of_range_penalty_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["harvest", "--dedup-penalty", "1.5"])

    def test_scenarios_run_accepts_dedup_penalty(self, tmp_path):
        import json

        out = io.StringIO()
        output = tmp_path / "BENCH_scenarios.json"
        code = main(["scenarios", "run", "--scale", "smoke",
                     "--scenarios", "near-duplicates", "--methods", "MQ",
                     "--domains", "researcher", "--queries", "2",
                     "--dedup-penalty", "0.5",
                     "--output", str(output)], out=out)
        assert code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        assert "duplicate_waste" in \
            report["domains"]["researcher"]["scenarios"]["near-duplicates"]

    def test_param_grid_over_dedup_penalty(self, tmp_path):
        import json

        out = io.StringIO()
        output = tmp_path / "BENCH_scenarios.json"
        code = main(["scenarios", "run", "--scale", "smoke",
                     "--scenarios", "near-duplicates", "--methods", "MQ",
                     "--domains", "researcher", "--queries", "2",
                     "--param", "dedup_penalty=0.0,0.5",
                     "--output", str(output)], out=out)
        assert code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["scenarios"] == ["near-duplicates@dedup_penalty=0.0",
                                       "near-duplicates@dedup_penalty=0.5"]
        assert report["param_grid"]["target"] == "config"
        cells = report["domains"]["researcher"]["scenarios"]
        digests = {cell["corpus_digest"] for cell in cells.values()}
        assert len(digests) == 1  # same corpus condition, different config

    def test_param_grid_rejects_bad_config_value(self, tmp_path):
        out = io.StringIO()
        code = main(["scenarios", "run", "--scenarios", "near-duplicates",
                     "--param", "dedup_penalty=7",
                     "--output", str(tmp_path / "x.json")], out=out)
        assert code == 2
        assert "invalid value 7" in out.getvalue()


class TestBackendArguments:
    def test_backend_choices(self):
        args = build_parser().parse_args(["experiment", "--figure", "fig13",
                                          "--backend", "process",
                                          "--workers", "2"])
        assert args.backend == "process"
        assert args.workers == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--figure", "fig13",
                                       "--backend", "quantum"])

    def test_scenarios_run_accepts_backend(self, tmp_path):
        import json

        out = io.StringIO()
        output = tmp_path / "BENCH_scenarios.json"
        code = main(["scenarios", "run", "--scale", "smoke",
                     "--scenarios", "zipf-skew", "--methods", "MQ",
                     "--domains", "researcher", "--queries", "2",
                     "--backend", "process", "--workers", "2",
                     "--output", str(output)], out=out)
        assert code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        # The backend must leave no trace in the matrix: the JSON is
        # byte-identical for any engine.
        assert "backend" not in report

    def test_harvest_notes_ignored_backend(self):
        out = io.StringIO()
        code = main(["harvest", "--domain", "researcher", "--entities", "12",
                     "--pages", "8", "--method", "MQ", "--queries", "2",
                     "--backend", "thread"], out=out)
        assert code == 0
        assert "--backend/--workers ignored" in out.getvalue()

    def test_paper_scale_flag_parses(self):
        args = build_parser().parse_args(["scenarios", "run", "--paper-scale"])
        assert args.paper_scale is True

    def test_paper_scale_conflicts_with_explicit_scale(self, tmp_path):
        out = io.StringIO()
        code = main(["scenarios", "run", "--paper-scale", "--scale", "smoke",
                     "--output", str(tmp_path / "x.json")], out=out)
        assert code == 2
        assert "conflicts" in out.getvalue()


class TestPerfCommand:
    def test_perf_requires_subcommand(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf"])

    def test_manifest_regenerates_from_artifacts(self, tmp_path):
        import json

        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_harvest.json").write_text(json.dumps({
            "scale": "smoke", "python": "3.11.7", "workers": 2, "jobs": 4,
            "backends": {"serial": {"wall_seconds": 1.0,
                                    "pages_gathered": 100,
                                    "pages_per_second": 100.0,
                                    "jobs_per_second": 4.0,
                                    "speedup_vs_serial": 1.0}},
        }), encoding="utf-8")
        out = io.StringIO()
        code = main(["perf", "manifest", "--results", str(results)], out=out)
        assert code == 0
        manifest = json.loads(
            (results / "BENCH_manifest.json").read_text(encoding="utf-8"))
        assert manifest["schema"] == "BENCH_manifest/v1"
        assert manifest["sources"] == ["BENCH_harvest.json"]

    def test_manifest_rejects_missing_results_dir(self, tmp_path):
        out = io.StringIO()
        code = main(["perf", "manifest", "--results",
                     str(tmp_path / "absent")], out=out)
        assert code == 2
        assert "does not exist" in out.getvalue()

    def test_report_renders_speedups_and_deltas(self):
        out = io.StringIO()
        code = main(["perf", "report", "--results", "benchmarks/results"],
                    out=out)
        assert code == 0
        text = out.getvalue()
        assert "harvest/serial" in text
        assert "Speedup" in text
        # The committed manifest exists, so the delta section renders too.
        assert "Throughput vs committed manifest" in text

    def test_report_rejects_missing_baseline(self, tmp_path):
        out = io.StringIO()
        code = main(["perf", "report", "--results", "benchmarks/results",
                     "--baseline", str(tmp_path / "absent.json")], out=out)
        assert code == 2

    def test_perf_output_writes_phase_report(self, tmp_path):
        import json

        out = io.StringIO()
        perf_path = tmp_path / "perf.json"
        code = main(["scenarios", "run", "--scale", "smoke",
                     "--scenarios", "zipf-skew", "--methods", "MQ",
                     "--domains", "researcher", "--queries", "2",
                     "--output", str(tmp_path / "matrix.json"),
                     "--perf-output", str(perf_path)], out=out)
        assert code == 0
        assert f"wrote perf report {perf_path}" in out.getvalue()
        report = json.loads(perf_path.read_text(encoding="utf-8"))
        # The instrumented phases of a local sweep all fired.
        for phase in ("sweep-cell", "split-prepare", "harvest", "selection"):
            assert report["phases"][phase]["count"] >= 1, phase
        assert report["phases"]["sweep-cell"]["total_seconds"] > 0.0

    def test_perf_output_does_not_leak_global_recorder(self, tmp_path):
        from repro import perf

        main(["scenarios", "run", "--scale", "smoke",
              "--scenarios", "zipf-skew", "--methods", "MQ",
              "--domains", "researcher", "--queries", "2",
              "--output", str(tmp_path / "matrix.json"),
              "--perf-output", str(tmp_path / "perf.json")],
             out=io.StringIO())
        assert perf.recorder() is None


class TestServingArguments:
    def test_client_choices(self):
        args = build_parser().parse_args(["harvest", "--client", "simulated"])
        assert args.client == "simulated"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["harvest", "--client", "psychic"])

    def test_harvest_with_simulated_client_prints_stats(self):
        out = io.StringIO()
        code = main(["harvest", "--domain", "researcher", "--entities", "12",
                     "--pages", "8", "--method", "MQ", "--queries", "2",
                     "--client", "simulated"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "client : simulated" in text
        assert "retry queries charged to budget" in text

    def test_harvest_instant_client_matches_default_path(self):
        def run(extra):
            out = io.StringIO()
            assert main(["harvest", "--domain", "researcher", "--entities",
                         "12", "--pages", "8", "--method", "L2QBAL",
                         "--queries", "2"] + extra, out=out) == 0
            return [line for line in out.getvalue().splitlines()
                    if line.startswith(("query #", "f-score", "precision"))]

        assert run(["--client", "instant"]) == run([])

    def test_experiment_concurrency_conflicts_with_backend(self, tmp_path):
        out = io.StringIO()
        code = main(["experiment", "--figure", "fig13", "--scale", "smoke",
                     "--backend", "thread", "--concurrency", "4"], out=out)
        assert code == 2
        assert "serving" in out.getvalue()

    def test_serve_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve", "bench"])
        assert args.scale == "smoke"
        assert args.concurrency is None  # falls back to (1, 8)

    def test_serve_bench_writes_artifact(self, tmp_path):
        import json

        out = io.StringIO()
        output = tmp_path / "BENCH_serving.json"
        code = main(["serve", "bench", "--scale", "smoke",
                     "--methods", "RND", "--queries", "2", "--entities", "2",
                     "--concurrency", "1", "2", "--time-scale", "0",
                     "--output", str(output)], out=out)
        assert code == 0
        artifact = json.loads(output.read_text(encoding="utf-8"))
        assert artifact["schema"] == "BENCH_serving/v1"
        assert set(artifact["concurrency"]) == {"1", "2"}
        assert artifact["concurrency"]["1"]["metrics"] == \
            artifact["concurrency"]["2"]["metrics"]
        assert "sess/s" in out.getvalue()
