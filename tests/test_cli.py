"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_corpus_defaults(self):
        args = build_parser().parse_args(["corpus"])
        assert args.domain == "researcher"
        assert args.entities == 24

    def test_experiment_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_unknown_domain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["corpus", "--domain", "movies"])


class TestCorpusCommand:
    def test_prints_statistics(self):
        out = io.StringIO()
        code = main(["corpus", "--domain", "car", "--entities", "6", "--pages", "6"],
                    out=out)
        assert code == 0
        text = out.getvalue()
        assert "domain" in text and "car" in text
        assert "pages" in text


class TestHarvestCommand:
    def test_harvest_with_manual_queries(self):
        out = io.StringIO()
        code = main(["harvest", "--domain", "researcher", "--entities", "12",
                     "--pages", "8", "--method", "MQ", "--queries", "2",
                     "--aspect", "CONTACT"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "query #1" in text
        assert "f-score=" in text

    def test_unknown_aspect_fails(self):
        out = io.StringIO()
        code = main(["harvest", "--domain", "researcher", "--entities", "12",
                     "--pages", "8", "--aspect", "HOBBY"], out=out)
        assert code == 2
        assert "unknown aspect" in out.getvalue()

    def test_unknown_entity_fails(self):
        out = io.StringIO()
        code = main(["harvest", "--domain", "researcher", "--entities", "12",
                     "--pages", "8", "--entity", "ghost"], out=out)
        assert code == 2


class TestExperimentCommand:
    def test_fig09_smoke(self):
        out = io.StringIO()
        code = main(["experiment", "--figure", "fig09", "--scale", "smoke",
                     "--domains", "researcher"], out=out)
        assert code == 0
        assert "RESEARCH" in out.getvalue()


class TestScenariosCommand:
    def test_scenarios_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_list_prints_registered_scenarios(self):
        out = io.StringIO()
        code = main(["scenarios", "list"], out=out)
        assert code == 0
        text = out.getvalue()
        for name in ("zipf-skew", "near-duplicates", "cross-domain-bleed",
                     "aspect-dropout"):
            assert name in text
        assert "stages:" in text

    def test_run_writes_robustness_matrix(self, tmp_path):
        import json

        out = io.StringIO()
        output = tmp_path / "BENCH_scenarios.json"
        code = main(["scenarios", "run", "--scale", "smoke",
                     "--scenarios", "zipf-skew",
                     "--methods", "MQ",
                     "--domains", "researcher",
                     "--queries", "2",
                     "--output", str(output)], out=out)
        assert code == 0
        text = out.getvalue()
        assert "Robustness matrix" in text
        assert "zipf-skew" in text
        assert str(output) in text
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["scenarios"] == ["zipf-skew"]
        assert "MQ" in report["domains"]["researcher"]["scenarios"]["zipf-skew"]["f_delta"]

    def test_run_rejects_unknown_scenario(self, tmp_path):
        out = io.StringIO()
        code = main(["scenarios", "run", "--scenarios", "no-such-scenario",
                     "--output", str(tmp_path / "x.json")], out=out)
        assert code == 2
        assert "unknown scenario" in out.getvalue()

    def test_run_rejects_unknown_method(self, tmp_path):
        out = io.StringIO()
        code = main(["scenarios", "run", "--methods", "L2QBall",
                     "--output", str(tmp_path / "x.json")], out=out)
        assert code == 2
        assert "unknown methods" in out.getvalue()
