"""Tests for the pluggable ranker registry."""

import pytest

from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.rankers import (
    RANKER_BM25,
    RANKER_DIRICHLET,
    is_registered,
    make_ranker,
    ranker_names,
    register_ranker,
)


@pytest.fixture()
def index():
    return InvertedIndex.from_documents({
        "d1": ["parallel", "hpc", "research"],
        "d2": ["data", "mining", "research"],
    })


class TestRegistry:
    def test_builtins_registered(self):
        assert RANKER_DIRICHLET in ranker_names()
        assert RANKER_BM25 in ranker_names()

    def test_is_registered(self):
        assert is_registered(RANKER_DIRICHLET)
        assert not is_registered("tfidf")

    def test_unknown_name_rejected(self, index):
        with pytest.raises(ValueError, match="unknown ranker"):
            make_ranker("tfidf", index)

    def test_error_lists_available_names(self, index):
        with pytest.raises(ValueError, match=RANKER_DIRICHLET):
            make_ranker("nonsense", index)

    def test_make_ranker_passes_params(self, index):
        ranker = make_ranker(RANKER_DIRICHLET, index, mu=250.0)
        assert ranker.mu == 250.0
        bm25 = make_ranker(RANKER_BM25, index, k1=2.0, b=0.5)
        assert bm25.k1 == 2.0 and bm25.b == 0.5

    def test_duplicate_registration_rejected(self):
        from repro.search import rankers as rankers_module

        register_ranker("dup-ranker-test", lambda index, **p: None)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_ranker("dup-ranker-test", lambda index, **p: None)
        finally:
            rankers_module._RANKERS.pop("dup-ranker-test", None)

    def test_duplicate_registration_with_overwrite_allowed(self, index):
        from repro.search import rankers as rankers_module

        register_ranker("dup-ranker-test", lambda index, **p: "first")
        try:
            register_ranker("dup-ranker-test", lambda index, **p: "second",
                            overwrite=True)
            assert make_ranker("dup-ranker-test", index) == "second"
        finally:
            rankers_module._RANKERS.pop("dup-ranker-test", None)

    def test_builtin_names_cannot_be_silently_replaced(self):
        with pytest.raises(ValueError, match="already registered"):
            register_ranker(RANKER_BM25, lambda index, **p: None)

    def test_reregistering_same_factory_is_idempotent(self):
        from repro.search import rankers as rankers_module

        def factory(index, **params):
            return None

        register_ranker("idem-ranker-test", factory)
        try:
            register_ranker("idem-ranker-test", factory)  # same object: no error
        finally:
            rankers_module._RANKERS.pop("idem-ranker-test", None)


class TestModelDisagreement:
    def test_bm25_and_dirichlet_order_crafted_corpus_differently(self):
        # "a" mentions both query terms once in a terse page; "b" repeats
        # "research" in a longer page.  Dirichlet smoothing (mu=100) favours
        # the terse page's concentration; BM25's saturated tf plus its
        # milder length penalty favours the repetition — so the two builtin
        # models produce genuinely different orderings, which is what makes
        # the --ranker switch worth benchmarking.
        index = InvertedIndex.from_documents({
            "a": ["research", "mining"] + [f"fa{i}" for i in range(3)],
            "b": ["research", "research", "mining"] + [f"fb{i}" for i in range(7)],
            "c": ["mining", "other", "words", "here"],
        })
        query = ["research", "mining"]
        dirichlet_order = [d for d, _ in make_ranker(RANKER_DIRICHLET, index).rank(query)]
        bm25_order = [d for d, _ in make_ranker(RANKER_BM25, index).rank(query)]
        assert set(dirichlet_order) == set(bm25_order) == {"a", "b", "c"}
        assert dirichlet_order.index("a") < dirichlet_order.index("b")
        assert bm25_order.index("b") < bm25_order.index("a")


class TestCustomRanker:
    def test_registered_ranker_usable_by_engine(self, researcher_corpus):
        class FirstDocRanker:
            """Degenerate ranker: every matching document scores 1.0."""

            def __init__(self, index):
                self.index = index

            def rank(self, query, top_k=0, require_match=True):
                matches = sorted(self.index.matching_documents(query))
                scored = [(doc_id, 1.0) for doc_id in matches]
                return scored[:top_k] if top_k > 0 else scored

            def retrieval_scores(self, query):
                ranked = self.rank(query)
                return {d: 1.0 / len(ranked) for d, _ in ranked} if ranked else {}

        register_ranker("first-doc-test", lambda index, **params: FirstDocRanker(index))
        try:
            engine = SearchEngine(researcher_corpus, ranker="first-doc-test")
            entity_id = researcher_corpus.entity_ids()[0]
            results = engine.search(entity_id, ["research"])
            assert results
            assert all(r.score == 1.0 for r in results)
        finally:
            from repro.search import rankers as rankers_module
            rankers_module._RANKERS.pop("first-doc-test", None)

    def test_decorator_form(self, index):
        from repro.search import rankers as rankers_module

        @register_ranker("decorated-test")
        def _factory(index, **params):
            return make_ranker(RANKER_BM25, index)

        try:
            assert is_registered("decorated-test")
            assert make_ranker("decorated-test", index).rank(["research"])
        finally:
            rankers_module._RANKERS.pop("decorated-test", None)


class TestEngineValidation:
    def test_engine_rejects_unknown_ranker(self, researcher_corpus):
        with pytest.raises(ValueError, match="unknown ranker"):
            SearchEngine(researcher_corpus, ranker="tfidf")
