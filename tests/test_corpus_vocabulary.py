"""Tests for the vocabulary."""

from repro.corpus.vocabulary import Vocabulary


class TestVocabularyConstruction:
    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("word")
        second = vocab.add("word")
        assert first == second
        assert len(vocab) == 1

    def test_from_documents(self):
        vocab = Vocabulary.from_documents([["a", "b"], ["b", "c"]])
        assert len(vocab) == 3
        assert vocab.num_documents == 2
        assert vocab.num_tokens == 4

    def test_round_trip_ids(self):
        vocab = Vocabulary.from_documents([["alpha", "beta"]])
        word_id = vocab.id_of("alpha")
        assert vocab.word_of(word_id) == "alpha"

    def test_unknown_word_id_is_none(self):
        assert Vocabulary().id_of("missing") is None


class TestVocabularyStatistics:
    def setup_method(self):
        self.vocab = Vocabulary.from_documents([["a", "a", "b"], ["a", "c"]])

    def test_term_frequency(self):
        assert self.vocab.term_frequency("a") == 3
        assert self.vocab.term_frequency("missing") == 0

    def test_document_frequency(self):
        assert self.vocab.document_frequency("a") == 2
        assert self.vocab.document_frequency("b") == 1

    def test_collection_probability_sums_to_one(self):
        total = sum(self.vocab.collection_probability(w) for w in self.vocab)
        assert abs(total - 1.0) < 1e-12

    def test_collection_probability_empty_vocab(self):
        assert Vocabulary().collection_probability("a") == 0.0

    def test_most_common(self):
        assert self.vocab.most_common(1) == [("a", 3)]

    def test_contains(self):
        assert "a" in self.vocab
        assert "zzz" not in self.vocab
