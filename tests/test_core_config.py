"""Tests for the L2Q configuration."""

import pytest

from repro.core.config import L2QConfig


class TestDefaults:
    def test_defaults_match_paper(self):
        config = L2QConfig()
        assert config.alpha == 0.15
        assert config.adaptation_lambda == 10.0
        assert config.max_query_length == 3
        assert config.top_k == 5
        assert config.num_queries == 3

    def test_defaults_validate(self):
        L2QConfig().validate()


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("alpha", 0.0),
        ("alpha", 1.0),
        ("max_query_length", 0),
        ("adaptation_lambda", 0.0),
        ("seed_recall_r0", 0.0),
        ("seed_recall_r0", 1.0),
        ("top_k", 0),
        ("num_queries", -1),
        ("domain_entity_support_fraction", 1.5),
    ])
    def test_invalid_values(self, field, value):
        config = L2QConfig(**{field: value})
        with pytest.raises(ValueError):
            config.validate()


class TestDomainSupportThreshold:
    def test_scales_with_domain_size(self):
        config = L2QConfig(domain_entity_support_fraction=0.1,
                           min_domain_entity_support=2)
        assert config.domain_support_threshold(500) == 50
        assert config.domain_support_threshold(100) == 10

    def test_floor_applies_for_small_domains(self):
        config = L2QConfig(domain_entity_support_fraction=0.1,
                           min_domain_entity_support=2)
        assert config.domain_support_threshold(5) == 2
        assert config.domain_support_threshold(0) == 2
