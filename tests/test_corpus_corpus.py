"""Tests for the Corpus container."""

import pytest

from tests.helpers import make_page

from repro.corpus.corpus import Corpus
from repro.corpus.domains import researcher_domain


class TestCorpusBasics:
    def test_entity_ids_sorted(self, researcher_corpus):
        ids = researcher_corpus.entity_ids()
        assert ids == sorted(ids)

    def test_pages_of_returns_only_entity_pages(self, researcher_corpus):
        entity_id = researcher_corpus.entity_ids()[0]
        for page in researcher_corpus.pages_of(entity_id):
            assert page.entity_id == entity_id

    def test_get_page_and_entity(self, researcher_corpus):
        entity_id = researcher_corpus.entity_ids()[0]
        page = researcher_corpus.pages_of(entity_id)[0]
        assert researcher_corpus.get_page(page.page_id) is page
        assert researcher_corpus.get_entity(entity_id).entity_id == entity_id

    def test_iter_pages_in_id_order(self, researcher_corpus):
        ids = [p.page_id for p in researcher_corpus.iter_pages()]
        assert ids == sorted(ids)

    def test_page_with_unknown_entity_rejected(self):
        spec = researcher_domain()
        page = make_page("pX", "ghost", [(["hello"], None)])
        with pytest.raises(ValueError):
            Corpus(spec, entities={}, pages={"pX": page})


class TestRelevance:
    def test_relevant_pages_match_ground_truth(self, researcher_corpus):
        entity_id = researcher_corpus.entity_ids()[0]
        relevant = researcher_corpus.relevant_pages(entity_id, "RESEARCH")
        for page in relevant:
            assert page.has_aspect("RESEARCH")
        all_pages = researcher_corpus.pages_of(entity_id)
        for page in all_pages:
            if page not in relevant:
                assert not page.has_aspect("RESEARCH")

    def test_aspect_paragraph_count_consistent_with_stats(self, researcher_corpus):
        stats = researcher_corpus.stats()
        for aspect in researcher_corpus.aspects:
            assert stats.paragraphs_per_aspect[aspect] == \
                researcher_corpus.aspect_paragraph_count(aspect)


class TestSubset:
    def test_subset_restricts_entities_and_pages(self, researcher_corpus):
        keep = researcher_corpus.entity_ids()[:3]
        subset = researcher_corpus.subset(keep)
        assert subset.entity_ids() == keep
        assert all(p.entity_id in keep for p in subset.iter_pages())
        assert subset.num_pages() == sum(
            len(researcher_corpus.pages_of(e)) for e in keep)

    def test_subset_unknown_entity_raises(self, researcher_corpus):
        with pytest.raises(KeyError):
            researcher_corpus.subset(["ghost"])

    def test_subset_shares_type_system(self, researcher_corpus):
        subset = researcher_corpus.subset(researcher_corpus.entity_ids()[:2])
        assert subset.type_system is researcher_corpus.type_system

    def test_empty_subset(self, researcher_corpus):
        subset = researcher_corpus.subset([])
        assert subset.num_entities() == 0
        assert subset.num_pages() == 0


class TestStats:
    def test_stats_totals(self, researcher_corpus):
        stats = researcher_corpus.stats()
        assert stats.num_entities == researcher_corpus.num_entities()
        assert stats.num_pages == researcher_corpus.num_pages()
        assert stats.num_paragraphs == sum(
            len(p.paragraphs) for p in researcher_corpus.iter_pages())
        assert stats.vocabulary_size == len(researcher_corpus.vocabulary())

    def test_stats_rows_render(self, researcher_corpus):
        rows = researcher_corpus.stats().as_rows()
        assert ("domain", "researcher") in rows
        assert len(rows) >= 6

    def test_vocabulary_cached(self, researcher_corpus):
        assert researcher_corpus.vocabulary() is researcher_corpus.vocabulary()
