"""Tests for the incremental candidate-query statistics."""

import pytest

from repro.core.candidates import CandidateStatistics
from repro.core.queries import QueryEnumerator

from tests.helpers import make_page


def _pages():
    return [
        make_page("p1", "e1", [(["parallel", "hpc", "research"], "RESEARCH")]),
        make_page("p2", "e1", [(["research", "complexity", "parallel"], "RESEARCH"),
                               (["visit", "siebel", "center"], None)]),
        make_page("p3", "e1", [(["award", "ceremony", "research"], "AWARD")]),
    ]


@pytest.fixture()
def enumerator():
    return QueryEnumerator(max_length=2, min_word_length=2)


class TestIncrementalEqualsBatch:
    def test_statistics_match_from_scratch_enumeration(self, enumerator):
        pages = _pages()
        incremental = CandidateStatistics(enumerator)
        for page in pages:  # one page at a time, as the harvest loop does
            incremental.add_page(page)
        batch = enumerator.enumerate_from_pages(pages)

        assert incremental.statistics.occurrences == batch.occurrences
        assert dict(incremental.statistics.pages) == dict(batch.pages)
        assert dict(incremental.statistics.entities) == dict(batch.entities)
        assert incremental.queries() == batch.queries()

    def test_folding_order_preserves_first_occurrence_order(self, enumerator):
        pages = _pages()
        one_by_one = CandidateStatistics(enumerator)
        for page in pages:
            one_by_one.add_page(page)
        all_at_once = CandidateStatistics(enumerator)
        all_at_once.add_pages(pages)
        assert one_by_one.queries() == all_at_once.queries()


class TestDeduplication:
    def test_page_folded_only_once(self, enumerator):
        stats = CandidateStatistics(enumerator)
        page = _pages()[0]
        assert stats.add_page(page) is True
        occurrences = dict(stats.statistics.occurrences)
        assert stats.add_page(page) is False
        assert dict(stats.statistics.occurrences) == occurrences
        assert stats.num_pages == 1

    def test_add_pages_counts_new_only(self, enumerator):
        stats = CandidateStatistics(enumerator)
        pages = _pages()
        assert stats.add_pages(pages) == 3
        assert stats.add_pages(pages) == 0
        assert stats.has_page("p1")
        assert not stats.has_page("p9")


class TestDerivedState:
    def test_sorted_queries_invalidated_on_new_page(self, enumerator):
        stats = CandidateStatistics(enumerator)
        pages = _pages()
        stats.add_page(pages[0])
        first = stats.sorted_queries()
        assert first == sorted(stats.queries())
        stats.add_page(pages[1])
        second = stats.sorted_queries()
        assert second == sorted(stats.queries())
        assert len(second) > len(first)

    def test_sorted_queries_returns_defensive_copy(self, enumerator):
        stats = CandidateStatistics(enumerator)
        stats.add_pages(_pages())
        mutated = stats.sorted_queries()
        mutated.reverse()
        assert stats.sorted_queries() == sorted(stats.queries())

    def test_unfired_sorted_queries(self, enumerator):
        stats = CandidateStatistics(enumerator)
        stats.add_pages(_pages())
        all_queries = stats.sorted_queries()
        fired = {all_queries[0], all_queries[-1]}
        remaining = stats.unfired_sorted_queries(fired)
        assert remaining == [q for q in all_queries if q not in fired]

    def test_observed_words_union(self, enumerator):
        stats = CandidateStatistics(enumerator)
        pages = _pages()
        stats.add_pages(pages)
        expected = set()
        for page in pages:
            expected.update(page.token_set)
        assert stats.observed_words == expected
