"""Tests for the scenario registry and :class:`ScenarioSpec`."""

import pytest

from repro.corpus.synthetic import CorpusConfig
from repro.scenarios import (
    ScenarioSpec,
    ZipfPageSkew,
    is_registered,
    make_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios import registry as registry_module


class TestBuiltins:
    def test_builtin_scenarios_registered(self):
        names = scenario_names()
        # The robustness matrix needs at least four registered scenarios.
        assert len(names) >= 4
        for expected in ("zipf-skew", "near-duplicates", "cross-domain-bleed",
                         "distractor-entities", "aspect-dropout", "domain-mixture"):
            assert expected in names

    def test_every_builtin_is_instantiable_and_described(self):
        for name in scenario_names():
            spec = make_scenario(name)
            assert spec.name == name
            assert spec.description
            assert spec.perturbations
            for perturbation in spec.perturbations:
                assert perturbation.name
                assert callable(perturbation.apply)

    def test_is_registered(self):
        assert is_registered("zipf-skew")
        assert not is_registered("no-such-scenario")


class TestErrorPaths:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("no-such-scenario")

    def test_error_lists_available_names(self):
        with pytest.raises(ValueError, match="zipf-skew"):
            make_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        register_scenario("dup-test", lambda: ScenarioSpec("dup-test", "first"))
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scenario("dup-test",
                                  lambda: ScenarioSpec("dup-test", "second"))
        finally:
            registry_module._SCENARIOS.pop("dup-test", None)

    def test_duplicate_registration_with_overwrite_allowed(self):
        register_scenario("dup-test", lambda: ScenarioSpec("dup-test", "first"))
        try:
            register_scenario("dup-test",
                              lambda: ScenarioSpec("dup-test", "second"),
                              overwrite=True)
            assert make_scenario("dup-test").description == "second"
        finally:
            registry_module._SCENARIOS.pop("dup-test", None)

    def test_reregistering_same_factory_is_idempotent(self):
        def factory():
            return ScenarioSpec("idem-test", "same")

        register_scenario("idem-test", factory)
        try:
            register_scenario("idem-test", factory)  # no error: same object
        finally:
            registry_module._SCENARIOS.pop("idem-test", None)


class TestSpec:
    def test_decorator_form_and_parameters(self):
        @register_scenario("decorated-scenario-test")
        def _factory(exponent: float = 2.0) -> ScenarioSpec:
            return ScenarioSpec(
                name="decorated-scenario-test",
                description="parametrised",
                perturbations=(ZipfPageSkew(exponent=exponent),),
            )

        try:
            assert is_registered("decorated-scenario-test")
            spec = make_scenario("decorated-scenario-test", exponent=0.5)
            assert spec.perturbations[0].exponent == 0.5
        finally:
            registry_module._SCENARIOS.pop("decorated-scenario-test", None)

    def test_build_config_applies_overrides_in_order(self):
        spec = ScenarioSpec(
            name="override-test",
            description="config overrides",
            perturbations=(ZipfPageSkew(),),
            config_overrides={"hub_page_fraction": 0.5, "noise_word_probability": 0.3},
        )
        config = spec.build_config("researcher", num_entities=8,
                                   pages_per_entity=4, seed=1,
                                   noise_word_probability=0.9)
        assert isinstance(config, CorpusConfig)
        assert config.hub_page_fraction == 0.5
        # Explicit corpus_for/build_config overrides win over the spec's.
        assert config.noise_word_probability == 0.9
        assert config.perturbations == spec.perturbations

    def test_corpus_for_generates_perturbed_corpus(self):
        spec = make_scenario("zipf-skew", exponent=1.5)
        corpus = spec.corpus_for("researcher", num_entities=8,
                                 pages_per_entity=6, seed=3)
        counts = sorted(len(corpus.pages_of(e)) for e in corpus.entity_ids())
        assert counts[0] < counts[-1]  # genuinely skewed
        assert corpus.num_pages() < 8 * 6
