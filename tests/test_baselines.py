"""Tests for the baseline strategies (LM, AQ, HR, MQ) and the ideal oracle."""

import pytest

from repro.aspects.relevance import OracleRelevance
from repro.baselines.adaptive_querying import AdaptiveQueryingSelection
from repro.baselines.harvest_rate import HarvestRateSelection, HarvestRateStatistics
from repro.baselines.lm_feedback import LanguageModelFeedbackSelection
from repro.baselines.manual import ManualQuerySelection
from repro.baselines.oracle import IdealSelection
from repro.core.config import L2QConfig
from repro.core.session import HarvestSession
from repro.utils.rng import SeededRandom


@pytest.fixture()
def session(researcher_corpus, researcher_prepared):
    split = researcher_prepared.split
    entity_id = split.test_entities[1] if len(split.test_entities) > 1 else split.test_entities[0]
    engine = researcher_prepared.engine
    aspect = "AWARD"
    session = HarvestSession(
        corpus=researcher_corpus,
        engine=engine,
        entity=researcher_corpus.get_entity(entity_id),
        aspect=aspect,
        relevance=researcher_prepared.relevance_by_aspect[aspect],
        config=L2QConfig(),
        rng=SeededRandom(7),
        domain_model=researcher_prepared.domain_model(aspect),
    )
    session.add_pages(engine.fetch_pages(engine.seed_results(entity_id)))
    return session


class TestLanguageModelFeedback:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            LanguageModelFeedbackSelection(k=0)
        with pytest.raises(ValueError):
            LanguageModelFeedbackSelection(background_weight=1.0)

    def test_selects_query_from_current_pages(self, session):
        query = LanguageModelFeedbackSelection().select(session)
        assert query is not None
        observed = set()
        for page in session.current_pages:
            observed.update(page.token_set)
        assert all(word in observed for word in query)

    def test_no_pages_returns_none(self, session):
        session.current_pages = []
        assert LanguageModelFeedbackSelection().select(session) is None

    def test_skips_fired_queries(self, session):
        selector = LanguageModelFeedbackSelection()
        first = selector.select(session)
        session.record_query(first)
        second = selector.select(session)
        assert second != first


class TestAdaptiveQuerying:
    def test_selects_query_supported_by_relevant_pages(self, session):
        query = AdaptiveQueryingSelection().select(session)
        assert query is not None
        assert not session.is_fired(query)

    def test_no_pages_returns_none(self, session):
        session.current_pages = []
        assert AdaptiveQueryingSelection().select(session) is None

    def test_prefers_novel_queries_over_exhausted_ones(self, session):
        selector = AdaptiveQueryingSelection()
        first = selector.select(session)
        session.record_query(first)
        second = selector.select(session)
        assert second != first


class TestHarvestRate:
    def test_statistics_from_domain_corpus(self, researcher_corpus):
        domain_corpus = researcher_corpus.subset(researcher_corpus.entity_ids()[:4])
        stats = HarvestRateStatistics.from_corpus(
            domain_corpus, OracleRelevance("AWARD"), L2QConfig())
        assert stats.query_harvest_rate
        assert stats.template_harvest_rate
        for rate in stats.query_harvest_rate.values():
            assert 0.0 <= rate <= 1.0
        for rate in stats.template_harvest_rate.values():
            assert 0.0 <= rate <= 1.0

    def test_statistics_from_empty_corpus(self, researcher_corpus):
        stats = HarvestRateStatistics.from_corpus(
            researcher_corpus.subset([]), OracleRelevance("AWARD"))
        assert not stats.query_harvest_rate
        assert stats.domain_score(("anything",)) is None

    def test_domain_score_averages_templates(self, researcher_corpus):
        domain_corpus = researcher_corpus.subset(researcher_corpus.entity_ids()[:4])
        stats = HarvestRateStatistics.from_corpus(
            domain_corpus, OracleRelevance("AWARD"), L2QConfig())
        query = next(iter(stats.query_harvest_rate))
        score = stats.domain_score(query)
        assert score is not None
        assert 0.0 <= score <= 1.0

    def test_selection_with_and_without_domain_statistics(self, session,
                                                          researcher_corpus):
        bare = HarvestRateSelection()
        assert bare.select(session) is not None
        domain_corpus = researcher_corpus.subset(researcher_corpus.entity_ids()[:4])
        stats = HarvestRateStatistics.from_corpus(
            domain_corpus, OracleRelevance("AWARD"), L2QConfig())
        informed = HarvestRateSelection(stats)
        assert informed.select(session) is not None

    def test_no_pages_returns_none(self, session):
        session.current_pages = []
        assert HarvestRateSelection().select(session) is None


class TestManualQuerying:
    def test_fires_aspect_queries_in_order(self, session):
        selector = ManualQuerySelection()
        expected = session.corpus.domain_spec.manual_queries("AWARD")
        fired = []
        for _ in range(len(expected)):
            query = selector.select(session)
            fired.append(query)
            session.record_query(query)
        assert fired == expected

    def test_exhausted_returns_none(self, session):
        selector = ManualQuerySelection()
        for query in session.corpus.domain_spec.manual_queries("AWARD"):
            session.record_query(query)
        assert selector.select(session) is None

    def test_explicit_domain_spec(self, session, researcher_corpus):
        selector = ManualQuerySelection(researcher_corpus.domain_spec)
        assert selector.select(session) is not None


class TestIdealSelection:
    def test_selects_query_improving_coverage(self, session):
        ground_truth = OracleRelevance("AWARD")
        selector = IdealSelection(ground_truth)
        selector.prepare(session)
        query = selector.select(session)
        assert query is not None
        retrieved = session.engine.retrievable_pages(session.entity.entity_id, list(query))
        relevant = {p.page_id for p in session.corpus.relevant_pages(
            session.entity.entity_id, "AWARD")}
        assert set(retrieved) & relevant

    def test_no_relevant_pages_returns_none(self, session):
        class NothingRelevant(OracleRelevance):
            def __call__(self, page):
                return 0
        selector = IdealSelection(NothingRelevant("AWARD"))
        selector.prepare(session)
        assert selector.select(session) is None

    def test_prepare_called_lazily(self, session):
        selector = IdealSelection(OracleRelevance("AWARD"))
        assert selector.select(session) is not None
