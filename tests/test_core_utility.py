"""Tests for graph assembly and utility regularization."""

import pytest

from tests.helpers import make_page

from repro.aspects.relevance import AllRelevant, OracleRelevance
from repro.core.config import L2QConfig
from repro.core.utility import (
    GraphAssembler,
    precision_page_regularization,
    recall_page_regularization,
    template_regularization,
)
from repro.corpus.knowledge_base import build_type_system


def _pages():
    return [
        make_page("p1", "e1", [(["hpc", "research", "parallel"], "RESEARCH")]),
        make_page("p2", "e1", [(["hpc", "papers"], "RESEARCH")]),
        make_page("p3", "e1", [(["office", "contact", "email"], "CONTACT")]),
    ]


def _assembler():
    system = build_type_system({"topic": ["hpc", "parallel"]})
    return GraphAssembler(system, L2QConfig())


class TestGraphAssembly:
    def test_containment_edges(self):
        assembled = _assembler().assemble(_pages(), [("hpc",), ("office",), ("hpc", "papers")],
                                          use_templates=False)
        graph = assembled.graph
        assert dict(graph.query_page_neighbors(("hpc",))) == {"p1": 1.0, "p2": 1.0}
        assert dict(graph.query_page_neighbors(("office",))) == {"p3": 1.0}
        assert dict(graph.query_page_neighbors(("hpc", "papers"))) == {"p2": 1.0}

    def test_templates_added_when_enabled(self):
        assembled = _assembler().assemble(_pages(), [("hpc", "research")], use_templates=True)
        assert assembled.graph.num_templates >= 1
        assert dict(assembled.graph.query_template_neighbors(("hpc", "research")))

    def test_no_templates_when_disabled(self):
        assembled = _assembler().assemble(_pages(), [("hpc", "research")], use_templates=False)
        assert assembled.graph.num_templates == 0
        assert assembled.template_index is None

    def test_query_without_containing_page_still_a_vertex(self):
        assembled = _assembler().assemble(_pages(), [("unseen_word",)], use_templates=False)
        assert ("unseen_word",) in assembled.graph.queries
        assert assembled.graph.query_page_neighbors(("unseen_word",)) == []

    def test_edge_weight_override(self):
        weights = {("p1", ("hpc",)): 0.25}
        assembled = _assembler().assemble(_pages(), [("hpc",)], use_templates=False,
                                          edge_weights=weights)
        neighbors = dict(assembled.graph.query_page_neighbors(("hpc",)))
        assert neighbors["p1"] == 0.25
        assert neighbors["p2"] == 1.0

    def test_solver_uses_config_alpha(self):
        config = L2QConfig(alpha=0.3)
        system = build_type_system({})
        assembled = GraphAssembler(system, config).assemble(_pages(), [("hpc",)],
                                                            use_templates=False)
        assert assembled.solver(config).alpha == 0.3


class TestPageRegularization:
    def test_precision_regularization_is_binary(self):
        regularization = precision_page_regularization(_pages(), OracleRelevance("RESEARCH"))
        assert regularization == {"p1": 1.0, "p2": 1.0, "p3": 0.0}

    def test_recall_regularization_sums_to_one(self):
        regularization = recall_page_regularization(_pages(), OracleRelevance("RESEARCH"))
        assert sum(regularization.values()) == pytest.approx(1.0)
        assert regularization["p1"] == pytest.approx(0.5)
        assert regularization["p3"] == 0.0

    def test_recall_regularization_all_relevant(self):
        regularization = recall_page_regularization(_pages(), AllRelevant())
        assert all(v == pytest.approx(1 / 3) for v in regularization.values())

    def test_recall_regularization_no_relevant_pages(self):
        regularization = recall_page_regularization(_pages(), OracleRelevance("HOBBY"))
        assert all(v == 0.0 for v in regularization.values())


class TestTemplateRegularization:
    def test_lambda_scaling_and_intersection(self):
        domain = {("<topic>", "research"): 0.8, ("<topic>",): 0.4}
        graph_templates = [("<topic>", "research"), ("<institute>",)]
        regularization = template_regularization(domain, graph_templates, 10.0,
                                                 normalize=False)
        assert regularization == {("<topic>", "research"): 8.0}

    def test_normalisation_rescales_by_max(self):
        domain = {("a",): 0.02, ("b",): 0.01}
        regularization = template_regularization(domain, [("a",), ("b",)], 10.0,
                                                 normalize=True)
        assert regularization[("a",)] == pytest.approx(10.0)
        assert regularization[("b",)] == pytest.approx(5.0)

    def test_empty_domain_model(self):
        assert template_regularization({}, [("a",)], 10.0) == {}

    def test_non_positive_utilities_ignored(self):
        assert template_regularization({("a",): 0.0}, [("a",)], 10.0) == {}
