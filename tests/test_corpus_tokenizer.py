"""Tests for the tokenizer (phrase merging, stopwords)."""

from repro.corpus.knowledge_base import build_type_system
from repro.corpus.tokenizer import DEFAULT_STOPWORDS, Tokenizer


class TestBasicTokenisation:
    def test_lowercases_and_splits(self):
        tokens = Tokenizer().tokenize("Parallel Computing Systems")
        assert tokens == ["parallel", "computing", "systems"]

    def test_strips_punctuation(self):
        tokens = Tokenizer().tokenize("research, on (parallel) systems!")
        assert tokens == ["research", "on", "parallel", "systems"]

    def test_keeps_emails_and_urls_intact(self):
        tokens = Tokenizer().tokenize("mail me at a.b@c.edu or www.c.edu/home")
        assert "a.b@c.edu" in tokens
        assert "www.c.edu/home" in tokens


class TestPhraseMerging:
    def setup_method(self):
        self.system = build_type_system({"topic": ["data mining", "machine learning"]})
        self.tokenizer = Tokenizer(self.system)

    def test_merges_known_phrase(self):
        tokens = self.tokenizer.tokenize("his data mining papers")
        assert tokens == ["his", "data_mining", "papers"]

    def test_longest_match_priority(self):
        system = build_type_system({"topic": ["data mining", "data mining systems"]})
        tokens = Tokenizer(system).tokenize("data mining systems rock")
        assert tokens[0] == "data_mining_systems"

    def test_unknown_phrase_not_merged(self):
        tokens = self.tokenizer.tokenize("his text mining papers")
        assert "text_mining" not in tokens

    def test_round_trip_from_generated_text(self):
        # The synthetic generator renders "data_mining" as "data mining";
        # the tokenizer must recover the canonical token.
        rendered = "data_mining".replace("_", " ")
        assert self.tokenizer.tokenize(rendered) == ["data_mining"]


class TestStopwords:
    def test_default_stopword_detection(self):
        tokenizer = Tokenizer()
        assert tokenizer.is_stopword("the")
        assert not tokenizer.is_stopword("parallel")

    def test_content_tokens_removes_stopwords(self):
        tokenizer = Tokenizer()
        assert tokenizer.content_tokens("the parallel system is fast") == [
            "parallel", "system", "fast"]

    def test_content_tokens_accepts_token_list(self):
        tokenizer = Tokenizer()
        assert tokenizer.content_tokens(["the", "hpc"]) == ["hpc"]

    def test_custom_stopwords(self):
        tokenizer = Tokenizer(stopwords={"foo"})
        assert tokenizer.is_stopword("foo")
        assert not tokenizer.is_stopword("the")

    def test_default_stopword_list_is_reasonable(self):
        assert {"the", "and", "of"} <= DEFAULT_STOPWORDS
