"""Tests for the entity-scoped search engine."""

import pytest

from repro.search.engine import RANKER_BM25, SearchEngine


@pytest.fixture()
def engine(researcher_corpus):
    return SearchEngine(researcher_corpus, top_k=5)


class TestConfiguration:
    def test_invalid_top_k(self, researcher_corpus):
        with pytest.raises(ValueError):
            SearchEngine(researcher_corpus, top_k=0)

    def test_unknown_ranker(self, researcher_corpus):
        with pytest.raises(ValueError):
            SearchEngine(researcher_corpus, ranker="tfidf")

    def test_bm25_ranker_supported(self, researcher_corpus):
        engine = SearchEngine(researcher_corpus, ranker=RANKER_BM25)
        entity_id = researcher_corpus.entity_ids()[0]
        assert engine.seed_results(entity_id)


class TestEntityScoping:
    def test_results_only_from_target_entity(self, engine, researcher_corpus):
        entity_id = researcher_corpus.entity_ids()[0]
        results = engine.search(entity_id, ["research"])
        for result in results:
            assert researcher_corpus.get_page(result.page_id).entity_id == entity_id

    def test_unknown_entity_raises(self, engine):
        with pytest.raises(KeyError):
            engine.search("ghost", ["research"])

    def test_top_k_respected(self, engine, researcher_corpus):
        entity_id = researcher_corpus.entity_ids()[0]
        assert len(engine.search(entity_id, ["research"])) <= 5
        assert len(engine.search(entity_id, ["research"], top_k=2)) <= 2


class TestRetrieval:
    def test_nonsense_query_returns_nothing(self, engine, researcher_corpus):
        entity_id = researcher_corpus.entity_ids()[0]
        assert engine.search(entity_id, ["qqqzzzxxx"]) == []

    def test_results_sorted_by_score(self, engine, researcher_corpus):
        entity_id = researcher_corpus.entity_ids()[0]
        results = engine.search(entity_id, ["research"])
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_fetch_pages_materialises_results(self, engine, researcher_corpus):
        entity_id = researcher_corpus.entity_ids()[0]
        results = engine.search(entity_id, ["research"])
        pages = engine.fetch_pages(results)
        assert [p.page_id for p in pages] == [r.page_id for r in results]

    def test_seed_results_nonempty_for_every_entity(self, engine, researcher_corpus):
        for entity_id in researcher_corpus.entity_ids():
            assert engine.seed_results(entity_id)

    def test_retrievable_pages_matches_search(self, engine, researcher_corpus):
        entity_id = researcher_corpus.entity_ids()[0]
        via_search = [r.page_id for r in engine.search(entity_id, ["research"],
                                                       record_fetch=False)]
        assert engine.retrievable_pages(entity_id, ["research"]) == via_search


class TestFetchAccounting:
    def test_fetch_statistics_recorded(self, researcher_corpus):
        engine = SearchEngine(researcher_corpus, top_k=3,
                              simulated_fetch_seconds_per_page=2.0)
        entity_id = researcher_corpus.entity_ids()[0]
        results = engine.search(entity_id, ["research"])
        stats = engine.fetch_statistics
        assert stats.queries_fired == 1
        assert stats.pages_fetched == len(results)
        assert stats.simulated_fetch_seconds == pytest.approx(2.0 * len(results))
        assert stats.queries_by_entity[entity_id] == 1

    def test_retrievable_pages_not_recorded(self, researcher_corpus):
        engine = SearchEngine(researcher_corpus)
        entity_id = researcher_corpus.entity_ids()[0]
        engine.retrievable_pages(entity_id, ["research"])
        assert engine.fetch_statistics.queries_fired == 0

    def test_reset_statistics(self, researcher_corpus):
        engine = SearchEngine(researcher_corpus)
        entity_id = researcher_corpus.entity_ids()[0]
        engine.search(entity_id, ["research"])
        engine.reset_statistics()
        assert engine.fetch_statistics.queries_fired == 0
