"""Backend equivalence: serial == thread(4) == process(4), bit for bit.

The acceptance bar of the execution-backend refactor: swapping the engine
must never change a result.  Harvest runs are compared on everything
scheduling-independent (queries, result/new/seed page ids, per-job seeds)
and scenario sweeps on their full JSON rendering.
"""

import pytest

from repro.corpus.synthetic import base_generation_count
from repro.eval.experiments import ExperimentScale
from repro.eval.runner import ExperimentRunner
from repro.eval.scenario_sweep import run_scenario_sweep

from tests.helpers import harvest_signature

TINY_SCALE = ExperimentScale(
    name="tiny",
    num_entities={"researcher": 12, "car": 10},
    pages_per_entity=8,
    num_splits=1,
    max_test_entities=2,
    max_aspects=2,
    num_queries_list=(2,),
    corpus_seed=11,
)

BACKENDS = ("serial", "thread", "process")


def _jobs(runner, prepared, methods=("L2QBAL", "RND"), num_queries=2):
    entities = list(prepared.split.test_entities)[:2]
    return [(runner.build_job(prepared, method, entity_id, "RESEARCH", num_queries))
            for method in methods
            for entity_id in entities]


class TestHarvestEquivalence:
    @pytest.fixture(scope="class")
    def serial_signatures(self, researcher_runner, researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        results = harvester.harvest_many(
            _jobs(researcher_runner, researcher_prepared), backend="serial")
        return [harvest_signature(r) for r in results]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_reproduces_serial(self, researcher_runner,
                                       researcher_prepared, backend,
                                       serial_signatures):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        results = harvester.harvest_many(
            _jobs(researcher_runner, researcher_prepared),
            workers=4, backend=backend)
        assert [harvest_signature(r) for r in results] == serial_signatures

    def test_job_seeds_identical_across_backends(self, researcher_runner,
                                                 researcher_prepared):
        # Seeds derive from (base_seed, split, method, entity, aspect), so
        # rebuilding the same batch yields the same seeds regardless of
        # where it will execute.
        first = [job.seed for job in _jobs(researcher_runner, researcher_prepared)]
        second = [job.seed for job in _jobs(researcher_runner, researcher_prepared)]
        assert first == second


class TestRunnerEquivalence:
    def test_process_spec_path_reproduces_serial(self, tiny_corpus, tiny_corpus_spec):
        def evaluate(backend, corpus_spec=None, workers=1):
            runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=workers,
                                      backend=backend, corpus_spec=corpus_spec)
            return runner.evaluate_methods(("RND", "MQ"), num_queries_list=(2,),
                                           max_test_entities=2,
                                           aspects=("RESEARCH",))

        serial = evaluate("serial")
        process = evaluate("process", corpus_spec=tiny_corpus_spec, workers=4)
        for method in ("RND", "MQ"):
            assert serial[method].precision == process[method].precision
            assert serial[method].recall == process[method].recall
            assert serial[method].f_score == process[method].f_score

    def test_mismatched_corpus_spec_fails_loudly(self, tiny_corpus):
        # A spec describing a different corpus (wrong seed) must error in
        # the worker, not silently fold metrics against the wrong ground
        # truth.
        from repro.exec.specs import CorpusSpec

        stale = CorpusSpec(domain="researcher",
                           num_entities=TINY_SCALE.num_entities["researcher"],
                           pages_per_entity=TINY_SCALE.pages_per_entity,
                           seed=TINY_SCALE.corpus_seed + 1)
        runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=2,
                                  backend="process", corpus_spec=stale)
        with pytest.raises(ValueError, match="digest does not match"):
            runner.evaluate_methods(("RND",), num_queries_list=(2,),
                                    max_test_entities=1,
                                    aspects=("RESEARCH",))

    def test_process_live_fallback_reproduces_serial(self, tiny_corpus):
        # Without a corpus spec the process backend pickles the live
        # harvester and jobs (engine rebuilds its index per worker).
        def evaluate(backend, workers=1):
            runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=workers,
                                      backend=backend)
            return runner.evaluate_methods(("RND",), num_queries_list=(2,),
                                           max_test_entities=2,
                                           aspects=("RESEARCH",))

        serial = evaluate("serial")
        process = evaluate("process", workers=2)
        assert serial["RND"].f_score == process["RND"].f_score

    @pytest.fixture(scope="class")
    def tiny_corpus(self):
        return TINY_SCALE.corpus_for("researcher")

    @pytest.fixture(scope="class")
    def tiny_corpus_spec(self):
        return TINY_SCALE.corpus_spec_for("researcher")


class TestFetchAccountingEquivalence:
    """The PR 3 follow-up bugfix: worker-side fetch statistics must not be
    lost by the process backend — every backend's results merge to the same
    batch-level accounting."""

    @pytest.fixture(scope="class")
    def tiny_corpus(self):
        return TINY_SCALE.corpus_for("researcher")

    def _merged(self, corpus, backend, workers):
        from repro.search.engine import merge_run_accounting

        runner = ExperimentRunner(corpus, base_seed=5)
        prepared = runner.prepare(runner.default_split(0))
        jobs = _jobs(runner, prepared)
        results = runner.harvester_for(prepared).harvest_many(
            jobs, workers=workers, backend=backend)
        engine_stats = prepared.engine.fetch_statistics
        return merge_run_accounting(
            [r.fetch_accounting for r in results]), engine_stats

    def test_merged_accounting_identical_across_backends(self, tiny_corpus):
        serial, _ = self._merged(tiny_corpus, "serial", 1)
        assert serial.queries_fired > 0
        for backend in ("thread", "process"):
            merged, _ = self._merged(tiny_corpus, backend, 4)
            assert merged == serial

    def test_process_backend_ships_statistics_home(self, tiny_corpus):
        # The orchestrator's engine never fired a query (workers did), yet
        # the merged per-run accounts reproduce the serial engine's view.
        serial, serial_engine = self._merged(tiny_corpus, "serial", 1)
        merged, orchestrator_engine = self._merged(tiny_corpus, "process", 4)
        assert orchestrator_engine.queries_fired == 0
        assert merged.queries_fired == serial_engine.queries_fired
        assert merged.pages_fetched == serial_engine.pages_fetched
        assert merged.cache_hits == serial_engine.cache_hits
        assert merged.cache_misses == serial_engine.cache_misses
        assert merged.queries_by_entity == serial_engine.queries_by_entity

    def test_runner_evaluation_exposes_merged_statistics(self, tiny_corpus):
        def fetch_stats(backend, workers=1, corpus_spec=None):
            runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=workers,
                                      backend=backend, corpus_spec=corpus_spec)
            evaluation = runner.evaluate_methods_detailed(
                ("RND", "L2QBAL"), num_queries_list=(2,),
                max_test_entities=2, aspects=("RESEARCH",))
            return evaluation.fetch_statistics

        serial = fetch_stats("serial")
        assert serial.queries_fired > 0
        assert fetch_stats("thread", workers=4) == serial
        assert fetch_stats("process", workers=4,
                           corpus_spec=TINY_SCALE.corpus_spec_for(
                               "researcher")) == serial


class TestSweepEquivalence:
    @pytest.fixture(scope="class")
    def sweep_kwargs(self):
        return dict(scale=TINY_SCALE, scenarios=("zipf-skew", "near-duplicates"),
                    methods=("L2QBAL",), domains=("researcher",), num_queries=2)

    @pytest.fixture(scope="class")
    def serial_json(self, sweep_kwargs):
        return run_scenario_sweep(backend="serial", **sweep_kwargs).to_json()

    @pytest.mark.parametrize("backend,workers", [("thread", 4), ("process", 4)])
    def test_sweep_digest_equal_across_backends(self, sweep_kwargs, serial_json,
                                                backend, workers):
        swept = run_scenario_sweep(backend=backend, workers=workers,
                                   **sweep_kwargs).to_json()
        assert swept == serial_json


class TestSharedBaseGeneration:
    def test_sweep_generates_one_base_per_domain(self, sweep_result_counted):
        generations, result = sweep_result_counted
        # One domain swept with two scenarios: exactly one base generation;
        # the clean corpus and both perturbed corpora realise from it.
        assert generations == 1
        assert len(result.cells_by_domain["researcher"]) == 2

    def test_perturbed_digests_differ_from_clean(self, sweep_result_counted):
        _, result = sweep_result_counted
        clean = result.clean_by_domain["researcher"]["corpus_digest"]
        for cell in result.cells_by_domain["researcher"].values():
            assert cell.corpus_digest != clean

    @pytest.fixture(scope="class")
    def sweep_result_counted(self):
        before = base_generation_count()
        result = run_scenario_sweep(
            scale=TINY_SCALE, scenarios=("zipf-skew", "near-duplicates"),
            methods=("MQ",), domains=("researcher",), num_queries=2)
        return base_generation_count() - before, result
