"""Backend equivalence: serial == thread(4) == process(4) == serving, bit for bit.

The acceptance bar of the execution-backend refactor: swapping the engine
must never change a result.  Harvest runs are compared on everything
scheduling-independent (queries, result/new/seed page ids, per-job seeds)
and scenario sweeps on their full JSON rendering.  The async serving
backend joins the same bar with its default instant client: awaiting at
the fetch boundary must not perturb a single page id.
"""

import pytest

from repro.core.config import L2QConfig
from repro.corpus.synthetic import base_generation_count
from repro.eval.experiments import ExperimentScale
from repro.eval.runner import ExperimentRunner, plan_harvest_batches
from repro.eval.scenario_sweep import run_scenario_sweep
from repro.exec.specs import CorpusSpec, HarvestJobSpec, HarvestTaskContext

from tests.helpers import harvest_signature

TINY_SCALE = ExperimentScale(
    name="tiny",
    num_entities={"researcher": 12, "car": 10},
    pages_per_entity=8,
    num_splits=1,
    max_test_entities=2,
    max_aspects=2,
    num_queries_list=(2,),
    corpus_seed=11,
)

BACKENDS = ("serial", "thread", "process", "serving")


def _jobs(runner, prepared, methods=("L2QBAL", "RND"), num_queries=2):
    entities = list(prepared.split.test_entities)[:2]
    return [(runner.build_job(prepared, method, entity_id, "RESEARCH", num_queries))
            for method in methods
            for entity_id in entities]


class TestHarvestEquivalence:
    @pytest.fixture(scope="class")
    def serial_signatures(self, researcher_runner, researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        results = harvester.harvest_many(
            _jobs(researcher_runner, researcher_prepared), backend="serial")
        return [harvest_signature(r) for r in results]

    @pytest.mark.parametrize("backend", ["thread", "process", "serving"])
    def test_backend_reproduces_serial(self, researcher_runner,
                                       researcher_prepared, backend,
                                       serial_signatures):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        results = harvester.harvest_many(
            _jobs(researcher_runner, researcher_prepared),
            workers=4, backend=backend)
        assert [harvest_signature(r) for r in results] == serial_signatures

    def test_job_seeds_identical_across_backends(self, researcher_runner,
                                                 researcher_prepared):
        # Seeds derive from (base_seed, split, method, entity, aspect), so
        # rebuilding the same batch yields the same seeds regardless of
        # where it will execute.
        first = [job.seed for job in _jobs(researcher_runner, researcher_prepared)]
        second = [job.seed for job in _jobs(researcher_runner, researcher_prepared)]
        assert first == second


class TestRunnerEquivalence:
    def test_process_spec_path_reproduces_serial(self, tiny_corpus, tiny_corpus_spec):
        def evaluate(backend, corpus_spec=None, workers=1):
            runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=workers,
                                      backend=backend, corpus_spec=corpus_spec)
            return runner.evaluate_methods(("RND", "MQ"), num_queries_list=(2,),
                                           max_test_entities=2,
                                           aspects=("RESEARCH",))

        serial = evaluate("serial")
        process = evaluate("process", corpus_spec=tiny_corpus_spec, workers=4)
        for method in ("RND", "MQ"):
            assert serial[method].precision == process[method].precision
            assert serial[method].recall == process[method].recall
            assert serial[method].f_score == process[method].f_score

    def test_mismatched_corpus_spec_fails_loudly(self, tiny_corpus):
        # A spec describing a different corpus (wrong seed) must error in
        # the worker, not silently fold metrics against the wrong ground
        # truth.  The store stays off: publish-on-dispatch ships the *live*
        # corpus, so with a store attached there is no mismatch to catch —
        # this guard covers the rebuild path.
        from repro.exec.specs import CorpusSpec

        stale = CorpusSpec(domain="researcher",
                           num_entities=TINY_SCALE.num_entities["researcher"],
                           pages_per_entity=TINY_SCALE.pages_per_entity,
                           seed=TINY_SCALE.corpus_seed + 1)
        runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=2,
                                  backend="process", corpus_spec=stale,
                                  corpus_store="off")
        with pytest.raises(ValueError, match="digest does not match"):
            runner.evaluate_methods(("RND",), num_queries_list=(2,),
                                    max_test_entities=1,
                                    aspects=("RESEARCH",))

    def test_process_live_fallback_reproduces_serial(self, tiny_corpus):
        # Without a corpus spec the process backend pickles the live
        # harvester and jobs (engine rebuilds its index per worker).
        def evaluate(backend, workers=1):
            runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=workers,
                                      backend=backend)
            return runner.evaluate_methods(("RND",), num_queries_list=(2,),
                                           max_test_entities=2,
                                           aspects=("RESEARCH",))

        serial = evaluate("serial")
        process = evaluate("process", workers=2)
        assert serial["RND"].f_score == process["RND"].f_score

    @pytest.fixture(scope="class")
    def tiny_corpus(self):
        return TINY_SCALE.corpus_for("researcher")

    @pytest.fixture(scope="class")
    def tiny_corpus_spec(self):
        return TINY_SCALE.corpus_spec_for("researcher")


class TestFetchAccountingEquivalence:
    """The PR 3 follow-up bugfix: worker-side fetch statistics must not be
    lost by the process backend — every backend's results merge to the same
    batch-level accounting."""

    @pytest.fixture(scope="class")
    def tiny_corpus(self):
        return TINY_SCALE.corpus_for("researcher")

    def _merged(self, corpus, backend, workers):
        from repro.search.engine import merge_run_accounting

        runner = ExperimentRunner(corpus, base_seed=5)
        prepared = runner.prepare(runner.default_split(0))
        jobs = _jobs(runner, prepared)
        results = runner.harvester_for(prepared).harvest_many(
            jobs, workers=workers, backend=backend)
        engine_stats = prepared.engine.fetch_statistics
        return merge_run_accounting(
            [r.fetch_accounting for r in results]), engine_stats

    def test_merged_accounting_identical_across_backends(self, tiny_corpus):
        serial, _ = self._merged(tiny_corpus, "serial", 1)
        assert serial.queries_fired > 0
        for backend in ("thread", "process"):
            merged, _ = self._merged(tiny_corpus, backend, 4)
            assert merged == serial

    def test_process_backend_ships_statistics_home(self, tiny_corpus):
        # The orchestrator's engine never fired a query (workers did), yet
        # the merged per-run accounts reproduce the serial engine's view.
        serial, serial_engine = self._merged(tiny_corpus, "serial", 1)
        merged, orchestrator_engine = self._merged(tiny_corpus, "process", 4)
        assert orchestrator_engine.queries_fired == 0
        assert merged.queries_fired == serial_engine.queries_fired
        assert merged.pages_fetched == serial_engine.pages_fetched
        assert merged.cache_hits == serial_engine.cache_hits
        assert merged.cache_misses == serial_engine.cache_misses
        assert merged.queries_by_entity == serial_engine.queries_by_entity

    def test_runner_evaluation_exposes_merged_statistics(self, tiny_corpus):
        def fetch_stats(backend, workers=1, corpus_spec=None):
            runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=workers,
                                      backend=backend, corpus_spec=corpus_spec)
            evaluation = runner.evaluate_methods_detailed(
                ("RND", "L2QBAL"), num_queries_list=(2,),
                max_test_entities=2, aspects=("RESEARCH",))
            return evaluation.fetch_statistics

        serial = fetch_stats("serial")
        assert serial.queries_fired > 0
        assert fetch_stats("thread", workers=4) == serial
        assert fetch_stats("process", workers=4,
                           corpus_spec=TINY_SCALE.corpus_spec_for(
                               "researcher")) == serial


def _context(split_index: int) -> HarvestTaskContext:
    return HarvestTaskContext(
        corpus=CorpusSpec(domain="researcher", num_entities=8,
                          pages_per_entity=4, seed=1),
        config=L2QConfig(),
        base_seed=5,
        split_index=split_index,
    )


def _specs(split_index: int, count: int):
    return [HarvestJobSpec(method="RND", entity_id=f"e{i}", aspect="A",
                           num_queries=2, seed=split_index * 100 + i)
            for i in range(count)]


class TestPlanHarvestBatches:
    """The split-first sharding policy, pinned deterministically."""

    def test_one_batch_per_split_when_workers_do_not_exceed_splits(self):
        payloads = [(_context(i), _specs(i, 6)) for i in range(4)]
        batches = plan_harvest_batches(payloads, workers=2)
        assert len(batches) == 4
        for index, batch in enumerate(batches):
            assert batch.context.split_index == index
            assert list(batch.specs) == payloads[index][1]

    def test_workers_exceeding_splits_cut_splits_into_page_batches(self):
        payloads = [(_context(i), _specs(i, 6)) for i in range(2)]
        batches = plan_harvest_batches(payloads, workers=4)
        # ceil(4 workers / 2 splits) = 2 contiguous pieces per split.
        assert len(batches) == 4
        for index in range(2):
            pieces = [b for b in batches if b.context.split_index == index]
            assert len(pieces) == 2
            reassembled = [spec for piece in pieces for spec in piece.specs]
            assert reassembled == payloads[index][1]

    def test_batches_stay_split_major_and_in_spec_order(self):
        payloads = [(_context(i), _specs(i, 5)) for i in range(3)]
        batches = plan_harvest_batches(payloads, workers=7)
        flattened = [spec for batch in batches for spec in batch.specs]
        assert flattened == [spec for _, specs in payloads for spec in specs]
        assert [b.context.split_index for b in batches] == \
            sorted(b.context.split_index for b in batches)

    def test_tiny_splits_never_produce_empty_batches(self):
        payloads = [(_context(0), _specs(0, 1)), (_context(1), [])]
        batches = plan_harvest_batches(payloads, workers=8)
        assert len(batches) == 1
        assert all(batch.specs for batch in batches)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            plan_harvest_batches([(_context(0), _specs(0, 2))], workers=0)

    def test_batches_reserve_a_runtime_slot_per_split(self):
        # The at-most-once preparation guarantee is structural: every batch
        # tells the worker how many distinct split runtimes are in flight,
        # so the worker-side cache can never evict one it still needs.
        payloads = [(_context(i), _specs(i, 6)) for i in range(6)]
        batches = plan_harvest_batches(payloads, workers=3)
        assert all(batch.runtime_slots == 6 for batch in batches)

    def test_runtime_cache_reserve_grows_but_never_shrinks(self):
        from repro.exec.specs import _ProcessLocalCache

        cache = _ProcessLocalCache(capacity=4)
        cache.reserve(10)
        assert cache.capacity == 10
        cache.reserve(2)
        assert cache.capacity == 10
        built = []
        for i in range(10):
            cache.get_or_build(f"k{i}", lambda i=i: built.append(i) or i)
        # All ten keys fit: re-asking for the first builds nothing new.
        cache.get_or_build("k0", lambda: built.append("rebuilt"))
        assert "rebuilt" not in built


class TestSplitFirstSharding:
    """Tentpole acceptance: split-first distributed evaluation — bit-identical
    to serial, with each worker preparing each split at most once."""

    METHODS = ("RND", "MQ")

    @pytest.fixture(scope="class")
    def tiny_corpus(self):
        return TINY_SCALE.corpus_for("researcher")

    @pytest.fixture(scope="class")
    def tiny_corpus_spec(self):
        return TINY_SCALE.corpus_spec_for("researcher")

    def _split_specs(self, runner, num_splits=2):
        out = []
        for index in range(num_splits):
            split = runner.default_split(index)
            entities = list(split.test_entities)[:2]
            out.append((split, [
                runner.job_spec(split, method, entity_id, "RESEARCH", 2)
                for method in self.METHODS
                for entity_id in entities
            ]))
        return out

    def test_split_first_results_bit_identical_to_serial(self, tiny_corpus,
                                                         tiny_corpus_spec):
        serial_runner = ExperimentRunner(tiny_corpus, base_seed=5)
        split_specs = self._split_specs(serial_runner)
        serial = serial_runner._run_all_splits(split_specs, 1.0)

        process_runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=2,
                                          backend="process",
                                          corpus_spec=tiny_corpus_spec)
        process = process_runner._run_all_splits(split_specs, 1.0)
        assert [[harvest_signature(r) for r in split] for split in process] \
            == [[harvest_signature(r) for r in split] for split in serial]

    def test_each_worker_prepares_each_split_at_most_once(self, tiny_corpus,
                                                          tiny_corpus_spec):
        runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=2,
                                  backend="process",
                                  corpus_spec=tiny_corpus_spec)
        runner.evaluate_methods(self.METHODS, num_queries_list=(2,),
                                num_splits=2, max_test_entities=2,
                                aspects=("RESEARCH",))
        outcomes = runner.last_batch_outcomes
        # workers (2) <= splits (2): exactly one batch per split, so every
        # split is prepared exactly once in the whole cluster.
        assert [o.split_index for o in outcomes] == [0, 1]
        builds_per_split: dict = {}
        builds_per_worker_split: dict = {}
        for outcome in outcomes:
            builds_per_split[outcome.split_index] = \
                builds_per_split.get(outcome.split_index, 0) + outcome.runtime_builds
            key = (outcome.worker_pid, outcome.split_index)
            builds_per_worker_split[key] = \
                builds_per_worker_split.get(key, 0) + outcome.runtime_builds
        assert all(count == 1 for count in builds_per_split.values())
        assert all(count <= 1 for count in builds_per_worker_split.values())

    def test_workers_exceeding_splits_fall_back_to_page_batches(
            self, tiny_corpus, tiny_corpus_spec):
        serial = ExperimentRunner(tiny_corpus, base_seed=5).evaluate_methods(
            self.METHODS, num_queries_list=(2,), num_splits=1,
            max_test_entities=2, aspects=("RESEARCH",))
        runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=4,
                                  backend="process",
                                  corpus_spec=tiny_corpus_spec)
        process = runner.evaluate_methods(self.METHODS, num_queries_list=(2,),
                                          num_splits=1, max_test_entities=2,
                                          aspects=("RESEARCH",))
        outcomes = runner.last_batch_outcomes
        # The single split was cut into several stealable page batches ...
        assert len(outcomes) > 1
        assert {o.split_index for o in outcomes} == {0}
        # ... yet a worker executing several of them prepared the split once.
        builds: dict = {}
        for outcome in outcomes:
            key = (outcome.worker_pid, outcome.split_index)
            builds[key] = builds.get(key, 0) + outcome.runtime_builds
        assert all(count <= 1 for count in builds.values())
        # And the fallback is still bit-identical to serial.
        for method in self.METHODS:
            assert process[method].precision == serial[method].precision
            assert process[method].recall == serial[method].recall
            assert process[method].f_score == serial[method].f_score

    def test_multi_split_evaluation_identical_across_backends(
            self, tiny_corpus, tiny_corpus_spec):
        def evaluate(backend, workers=1, corpus_spec=None):
            runner = ExperimentRunner(tiny_corpus, base_seed=5, workers=workers,
                                      backend=backend, corpus_spec=corpus_spec)
            return runner.evaluate_methods_detailed(
                self.METHODS, num_queries_list=(2,), num_splits=2,
                max_test_entities=2, aspects=("RESEARCH",))

        serial = evaluate("serial")
        thread = evaluate("thread", workers=4)
        process = evaluate("process", workers=4, corpus_spec=tiny_corpus_spec)
        for method in self.METHODS:
            for other in (thread, process):
                assert other.normalized[method].f_score == \
                    serial.normalized[method].f_score
                assert other.absolute[method].precision == \
                    serial.absolute[method].precision
        # Merged fetch accounting survives split-first sharding unchanged.
        assert serial.fetch_statistics.queries_fired > 0
        assert thread.fetch_statistics == serial.fetch_statistics
        assert process.fetch_statistics == serial.fetch_statistics


class TestWorkerPerfShipping:
    """Worker-side phase timings must survive the process boundary: every
    batch outcome ships its per-phase aggregates home, and the orchestrator
    folds them into its active recorder."""

    @pytest.fixture(scope="class")
    def tiny_corpus(self):
        return TINY_SCALE.corpus_for("researcher")

    def test_distributed_run_folds_worker_phases_home(self, tiny_corpus):
        from repro import perf

        rec = perf.enable()
        try:
            runner = ExperimentRunner(
                tiny_corpus, base_seed=5, workers=2, backend="process",
                corpus_spec=TINY_SCALE.corpus_spec_for("researcher"))
            runner.evaluate_methods(("RND",), num_queries_list=(2,),
                                    num_splits=2, max_test_entities=2,
                                    aspects=("RESEARCH",))
        finally:
            perf.disable()
        outcomes = runner.last_batch_outcomes
        assert outcomes
        assert all(o.perf_phases for o in outcomes)
        # The orchestrator never harvested anything itself, yet its recorder
        # counts exactly the harvests the workers timed.
        shipped_harvests = sum(o.perf_phases["harvest"]["count"]
                               for o in outcomes)
        assert shipped_harvests > 0
        assert rec.count("harvest") == shipped_harvests
        assert rec.mean("harvest") > 0.0
        meta = rec.samples_for("harvest")[0].meta_dict()
        assert meta["worker_pid"] in {o.worker_pid for o in outcomes}
        assert "split" in meta

    def test_disabled_profiling_ships_nothing(self, tiny_corpus):
        from repro import perf

        perf.disable()
        runner = ExperimentRunner(
            tiny_corpus, base_seed=5, workers=2, backend="process",
            corpus_spec=TINY_SCALE.corpus_spec_for("researcher"))
        runner.evaluate_methods(("RND",), num_queries_list=(2,),
                                num_splits=2, max_test_entities=2,
                                aspects=("RESEARCH",))
        assert runner.last_batch_outcomes
        assert all(o.perf_phases == {} for o in runner.last_batch_outcomes)


class TestSweepEquivalence:
    @pytest.fixture(scope="class")
    def sweep_kwargs(self):
        return dict(scale=TINY_SCALE, scenarios=("zipf-skew", "near-duplicates"),
                    methods=("L2QBAL",), domains=("researcher",), num_queries=2)

    @pytest.fixture(scope="class")
    def serial_json(self, sweep_kwargs):
        return run_scenario_sweep(backend="serial", **sweep_kwargs).to_json()

    @pytest.mark.parametrize("backend,workers", [("thread", 4), ("process", 4)])
    def test_sweep_digest_equal_across_backends(self, sweep_kwargs, serial_json,
                                                backend, workers):
        swept = run_scenario_sweep(backend=backend, workers=workers,
                                   **sweep_kwargs).to_json()
        assert swept == serial_json


class TestSharedCorpusStore:
    """PR 7 tentpole acceptance: with a published store, workers *attach*
    to the orchestrator's corpus + index instead of rebuilding — and the
    attached run is bit-identical to both the rebuild run and serial."""

    METHODS = ("RND", "MQ")

    @pytest.fixture(scope="class")
    def tiny_corpus(self):
        return TINY_SCALE.corpus_for("researcher")

    @pytest.fixture(scope="class")
    def tiny_corpus_spec(self):
        return TINY_SCALE.corpus_spec_for("researcher")

    def _evaluate(self, corpus, backend, *, workers=1, corpus_spec=None,
                  corpus_store="off"):
        runner = ExperimentRunner(corpus, base_seed=5, workers=workers,
                                  backend=backend, corpus_spec=corpus_spec,
                                  corpus_store=corpus_store)
        try:
            evaluation = runner.evaluate_methods_detailed(
                self.METHODS, num_queries_list=(2,), num_splits=2,
                max_test_entities=2, aspects=("RESEARCH",))
        finally:
            runner.release_store()
        return runner, evaluation

    def _signatures(self, runner):
        return sorted(
            harvest_signature(r)
            for outcome in runner.last_batch_outcomes
            for r in outcome.results)

    def test_attach_bit_identical_to_rebuild_and_serial(
            self, tiny_corpus, tiny_corpus_spec):
        serial_runner, serial = self._evaluate(tiny_corpus, "serial")
        rebuild_runner, rebuild = self._evaluate(
            tiny_corpus, "process", workers=2, corpus_spec=tiny_corpus_spec,
            corpus_store="off")
        attach_runner, attach = self._evaluate(
            tiny_corpus, "process", workers=2, corpus_spec=tiny_corpus_spec,
            corpus_store="auto")
        for method in self.METHODS:
            for other in (rebuild, attach):
                assert other.normalized[method].precision == \
                    serial.normalized[method].precision
                assert other.normalized[method].recall == \
                    serial.normalized[method].recall
                assert other.normalized[method].f_score == \
                    serial.normalized[method].f_score
        assert attach.fetch_statistics == serial.fetch_statistics
        # Bit-for-bit: every harvest (queries, page-id trajectories, seeds)
        # of the attached run matches the rebuild run exactly.  (The serial
        # path runs without batches, so it is tied in via the metric and
        # fetch-statistics equalities above.)
        del serial_runner
        reference = self._signatures(rebuild_runner)
        assert len(reference) > 0
        assert self._signatures(attach_runner) == reference

    def test_store_eliminates_worker_index_rebuilds(self, tiny_corpus,
                                                    tiny_corpus_spec):
        rebuild_runner, _ = self._evaluate(
            tiny_corpus, "process", workers=2, corpus_spec=tiny_corpus_spec,
            corpus_store="off")
        attach_runner, _ = self._evaluate(
            tiny_corpus, "process", workers=2, corpus_spec=tiny_corpus_spec,
            corpus_store="auto")
        rebuild_outcomes = rebuild_runner.last_batch_outcomes
        attach_outcomes = attach_runner.last_batch_outcomes
        assert rebuild_outcomes and attach_outcomes
        # Store off: every worker rebuilt its inverted index from pages.
        assert all(not o.attached for o in rebuild_outcomes)
        assert sum(o.index_builds for o in rebuild_outcomes) > 0
        # Store on: zero rebuilds anywhere in the cluster — every runtime
        # adopted the published CSR snapshot.
        assert all(o.attached for o in attach_outcomes)
        assert sum(o.index_builds for o in attach_outcomes) == 0

    def test_thread_backend_ignores_store_publication(self, tiny_corpus):
        # In-process backends share the live corpus already; the store flag
        # must be a no-op there, not an error.
        _, threaded = self._evaluate(tiny_corpus, "thread", workers=4,
                                     corpus_store="auto")
        _, serial = self._evaluate(tiny_corpus, "serial")
        for method in self.METHODS:
            assert threaded.normalized[method].f_score == \
                serial.normalized[method].f_score

    def test_store_off_flag_disables_publication(self, tiny_corpus,
                                                 tiny_corpus_spec):
        runner, _ = self._evaluate(
            tiny_corpus, "process", workers=2, corpus_spec=tiny_corpus_spec,
            corpus_store="off")
        assert all(not o.attached for o in runner.last_batch_outcomes)

    def test_batches_carry_distinct_base_slot_counts(self):
        # Dispatch computes how many distinct base corpora are in flight so
        # workers can grow their caches *before* the first build.
        payloads = [(_context(i), _specs(i, 4)) for i in range(3)]
        batches = plan_harvest_batches(payloads, workers=3)
        # All three contexts share one CorpusSpec → one distinct base.
        assert all(batch.base_slots == 1 for batch in batches)


class TestSharedBaseGeneration:
    def test_sweep_generates_one_base_per_domain(self, sweep_result_counted):
        generations, result = sweep_result_counted
        # One domain swept with two scenarios: exactly one base generation;
        # the clean corpus and both perturbed corpora realise from it.
        assert generations == 1
        assert len(result.cells_by_domain["researcher"]) == 2

    def test_perturbed_digests_differ_from_clean(self, sweep_result_counted):
        _, result = sweep_result_counted
        clean = result.clean_by_domain["researcher"]["corpus_digest"]
        for cell in result.cells_by_domain["researcher"].values():
            assert cell.corpus_digest != clean

    @pytest.fixture(scope="class")
    def sweep_result_counted(self):
        before = base_generation_count()
        result = run_scenario_sweep(
            scale=TINY_SCALE, scenarios=("zipf-skew", "near-duplicates"),
            methods=("MQ",), domains=("researcher",), num_queries=2)
        return base_generation_count() - before, result


class TestClassifierSuiteAttach:
    """Trained suites ship through the corpus store: with a store attached,
    no worker batch ever retrains an aspect classifier, and the attached
    run is identical to retraining everywhere."""

    METHODS = ("RND", "MQ")

    @pytest.fixture(scope="class")
    def tiny_corpus(self):
        return TINY_SCALE.corpus_for("researcher")

    @pytest.fixture(scope="class")
    def tiny_corpus_spec(self):
        return TINY_SCALE.corpus_spec_for("researcher")

    def _evaluate(self, corpus, backend, *, workers=1, corpus_spec=None,
                  corpus_store="off"):
        runner = ExperimentRunner(corpus, base_seed=5, workers=workers,
                                  backend=backend, corpus_spec=corpus_spec,
                                  corpus_store=corpus_store)
        try:
            evaluation = runner.evaluate_methods(
                self.METHODS, num_queries_list=(2,), num_splits=2,
                max_test_entities=2, aspects=("RESEARCH",))
        finally:
            runner.release_store()
        return runner, evaluation

    def test_attached_workers_never_retrain(self, tiny_corpus,
                                            tiny_corpus_spec):
        runner, _ = self._evaluate(
            tiny_corpus, "process", workers=2, corpus_spec=tiny_corpus_spec,
            corpus_store="auto")
        outcomes = runner.last_batch_outcomes
        assert outcomes
        assert all(o.classifier_trainings == 0 for o in outcomes)
        assert all(o.classifier_attached for o in outcomes)

    def test_store_off_workers_train_per_split(self, tiny_corpus,
                                               tiny_corpus_spec):
        runner, _ = self._evaluate(
            tiny_corpus, "process", workers=2, corpus_spec=tiny_corpus_spec,
            corpus_store="off")
        outcomes = runner.last_batch_outcomes
        assert outcomes
        assert all(not o.classifier_attached for o in outcomes)
        # Every runtime build trains its split's suite from scratch.
        assert sum(o.classifier_trainings for o in outcomes) == \
            sum(o.runtime_builds for o in outcomes) > 0

    def test_attached_metrics_identical_across_backends(self, tiny_corpus,
                                                        tiny_corpus_spec):
        _, serial = self._evaluate(tiny_corpus, "serial")
        _, threaded = self._evaluate(tiny_corpus, "thread", workers=4,
                                     corpus_store="auto")
        _, attached = self._evaluate(
            tiny_corpus, "process", workers=4, corpus_spec=tiny_corpus_spec,
            corpus_store="auto")
        for method in self.METHODS:
            for other in (threaded, attached):
                assert other[method].precision == serial[method].precision
                assert other[method].recall == serial[method].recall
                assert other[method].f_score == serial[method].f_score
