"""Tests for the campaign runner: resume-safe dispatch + pure folding."""

import json

import pytest

from repro.campaign import (
    STORES_NAME,
    CampaignRunner,
    CampaignSpec,
    clean_stale_stores,
    fold_matrices,
    register_store_handles,
)
from repro.eval.experiments import ExperimentScale
from repro.eval.scenario_sweep import ScenarioSweep
from repro.store import StoreHandle

TINY_SCALE = ExperimentScale(
    name="tiny",
    num_entities={"researcher": 12, "car": 10},
    pages_per_entity=8,
    num_splits=1,
    max_test_entities=2,
    max_aspects=2,
    num_queries_list=(2,),
    corpus_seed=11,
)


def tiny_spec(**overrides):
    base = dict(name="unit", scale=TINY_SCALE, domains=("car",),
                scenarios=("zipf-skew",), methods=("MQ", "RND"),
                seeds=(11,), num_queries=2)
    base.update(overrides)
    return CampaignSpec(**base)


class TestRunAndFold:
    def test_uninterrupted_run_matches_scenario_sweep(self, tmp_path):
        runner = CampaignRunner(tmp_path / "camp", spec=tiny_spec())
        report = runner.run()
        assert report.complete
        assert report.executed == report.total == 2
        document = json.loads(report.matrices_path.read_text())
        sweep = ScenarioSweep(scale=TINY_SCALE, scenarios=("zipf-skew",),
                              methods=("MQ", "RND"), domains=("car",),
                              num_queries=2).run()
        assert document["seeds"]["11"] == sweep.to_json_dict()

    def test_interrupted_then_resumed_is_byte_identical(self, tmp_path):
        control = CampaignRunner(tmp_path / "control", spec=tiny_spec())
        control_report = control.run()

        interrupted = CampaignRunner(tmp_path / "interrupted",
                                     spec=tiny_spec())
        first = interrupted.run(max_cells=1)
        assert not first.complete
        assert (first.executed, first.remaining) == (1, 1)
        assert first.matrices_path is None

        # A fresh runner over the same directory — the resume path.
        resumed = CampaignRunner(tmp_path / "interrupted")
        second = resumed.run()
        assert second.complete
        assert (second.skipped, second.executed) == (1, 1)
        assert second.matrices_path.read_bytes() \
            == control_report.matrices_path.read_bytes()

    def test_complete_campaign_skips_everything(self, tmp_path):
        CampaignRunner(tmp_path / "camp", spec=tiny_spec()).run()
        report = CampaignRunner(tmp_path / "camp").run()
        assert (report.skipped, report.executed) == (2, 0)
        assert report.complete

    def test_fold_is_pure_function_of_artifacts(self, tmp_path):
        runner = CampaignRunner(tmp_path / "camp", spec=tiny_spec())
        runner.run()
        once = fold_matrices(runner.spec, runner.store)
        twice = fold_matrices(runner.spec, runner.store)
        assert json.dumps(once, sort_keys=True) \
            == json.dumps(twice, sort_keys=True)

    def test_thread_backend_same_bytes(self, tmp_path):
        serial = CampaignRunner(tmp_path / "serial", spec=tiny_spec())
        threaded = CampaignRunner(tmp_path / "threaded", spec=tiny_spec(),
                                  backend="thread", workers=2)
        a = serial.run().matrices_path.read_bytes()
        b = threaded.run().matrices_path.read_bytes()
        assert a == b

    def test_checkpoint_every_validates(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            CampaignRunner(tmp_path / "camp", spec=tiny_spec(),
                           checkpoint_every=0)

    def test_summary_document_shape(self, tmp_path):
        runner = CampaignRunner(tmp_path / "camp", spec=tiny_spec())
        report = runner.run()
        doc = runner.summary_document(report)
        assert doc["schema"].startswith("BENCH_campaign/")
        assert doc["campaign"] == "unit"
        assert doc["cells"] == {"total": 2, "skipped_on_resume": 0,
                                "executed_this_run": 2, "remaining": 0}
        assert doc["complete"] is True
        json.dumps(doc)  # JSON-serialisable throughout


class TestStoreRegistry:
    def test_clean_reaps_registered_handles(self, tmp_path):
        root = tmp_path / "camp"
        # Nonexistent segments: release() treats unlink-of-gone as no-op,
        # so the registry bookkeeping is observable without real shm.
        handles = {
            "seed11/car": StoreHandle(mode="shm", name="repro_test_gone",
                                      size=16, digest="d"),
        }
        register_store_handles(root, handles)
        assert (root / STORES_NAME).exists()
        reaped = clean_stale_stores(root)
        assert reaped == ["shm:repro_test_gone"]
        assert not (root / STORES_NAME).exists()

    def test_clean_without_registry_is_noop(self, tmp_path):
        assert clean_stale_stores(tmp_path / "nothing") == []

    def test_empty_registration_removes_file(self, tmp_path):
        root = tmp_path / "camp"
        register_store_handles(
            root, {"x": StoreHandle(mode="shm", name="n", size=1)})
        register_store_handles(root, {})
        assert not (root / STORES_NAME).exists()

    def test_malformed_registry_is_tolerated(self, tmp_path):
        root = tmp_path / "camp"
        root.mkdir()
        (root / STORES_NAME).write_text("{broken", encoding="utf-8")
        assert clean_stale_stores(root) == []
        assert not (root / STORES_NAME).exists()
