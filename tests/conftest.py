"""Shared fixtures for the test suite.

The expensive objects (corpora, prepared splits) are session-scoped so the
whole suite stays fast; tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.corpus.document import Entity
from repro.corpus.synthetic import CorpusConfig, CorpusGenerator
from repro.eval.runner import ExperimentRunner
from repro.eval.splits import split_entities

from tests.helpers import make_page


@pytest.fixture(scope="session")
def researcher_corpus():
    """A small deterministic researcher corpus shared across the suite."""
    config = CorpusConfig(domain="researcher", num_entities=16, pages_per_entity=10,
                          seed=11)
    return CorpusGenerator(config).generate()


@pytest.fixture(scope="session")
def car_corpus():
    """A small deterministic car corpus shared across the suite."""
    config = CorpusConfig(domain="car", num_entities=12, pages_per_entity=10, seed=11)
    return CorpusGenerator(config).generate()


@pytest.fixture(scope="session")
def researcher_runner(researcher_corpus):
    """An experiment runner over the shared researcher corpus."""
    return ExperimentRunner(researcher_corpus, base_seed=5)


@pytest.fixture(scope="session")
def researcher_split(researcher_corpus):
    """A canonical split of the shared researcher corpus."""
    return split_entities(researcher_corpus.entity_ids(), seed=1)


@pytest.fixture(scope="session")
def researcher_prepared(researcher_runner, researcher_split):
    """A prepared split (classifiers trained, engine built) for the researcher corpus."""
    return researcher_runner.prepare(researcher_split)


# -- Tiny hand-built fixtures (the paper's running example of Fig. 2) -------

@pytest.fixture()
def snir_pages():
    """Six pages mirroring the paper's running example for Marc Snir (Fig. 2a)."""
    specs = [
        ("p1", [["conducts", "research", "parallel", "hpc", "systems"]], "RESEARCH"),
        ("p2", [["published", "papers", "parallel", "hpc", "research"]], "RESEARCH"),
        ("p3", [["research", "complexity", "parallel", "algorithms", "valuable"]], "RESEARCH"),
        ("p4", [["studies", "computational", "complexity", "u_illinois"]], "RESEARCH"),
        ("p5", [["visit", "siebel", "center", "u_illinois"]], None),
        ("p6", [["senior", "manager", "ibm", "joining", "u_illinois"]], None),
    ]
    pages = []
    for page_id, paragraphs, aspect in specs:
        pages.append(make_page(page_id, "snir",
                               [(tokens, aspect) for tokens in paragraphs]))
    return pages


@pytest.fixture()
def snir_entity():
    """The target entity of the running example."""
    return Entity(
        entity_id="snir",
        domain="researcher",
        name_tokens=("marc", "snir"),
        seed_query=("marc", "snir", "uiuc"),
        attributes={"topic": ("parallel", "hpc"), "institute": ("u_illinois",)},
    )
