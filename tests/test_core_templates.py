"""Tests for templates (Definition 1 of the paper)."""

from repro.core.templates import (
    TemplateIndex,
    abstract_query,
    format_template,
    is_type_unit,
    template_abstraction_level,
    template_abstracts,
    type_unit,
    unit_type_name,
)
from repro.corpus.knowledge_base import build_type_system


def _system():
    return build_type_system({
        "topic": ["hpc", "data mining", "ai"],
        "journal": ["ijhpca", "tkde", "jmlr"],
    })


class TestUnits:
    def test_type_unit_round_trip(self):
        unit = type_unit("topic")
        assert is_type_unit(unit)
        assert unit_type_name(unit) == "topic"

    def test_literal_unit(self):
        assert not is_type_unit("research")
        assert unit_type_name("research") is None

    def test_format_template(self):
        assert format_template(("<topic>", "research")) == "<topic> research"


class TestAbstraction:
    def test_paper_example_topic_journal(self):
        # "hpc ijhpca" should be abstractable as "<topic> <journal>" (Fig. 3).
        templates = abstract_query(("hpc", "ijhpca"), _system())
        assert ("<topic>", "<journal>") in templates
        assert ("<topic>", "ijhpca") in templates
        assert ("hpc", "<journal>") in templates

    def test_identity_template_excluded(self):
        templates = abstract_query(("hpc", "research"), _system())
        assert ("hpc", "research") not in templates
        assert ("<topic>", "research") in templates

    def test_untyped_query_has_no_templates(self):
        assert abstract_query(("random", "words"), _system()) == []

    def test_max_templates_cap_prefers_most_abstract(self):
        templates = abstract_query(("hpc", "ijhpca", "ai"), _system(), max_templates=2)
        assert len(templates) == 2
        assert templates[0] == ("<journal>", "<topic>") or \
            template_abstraction_level(templates[0]) == 3

    def test_abstraction_level(self):
        assert template_abstraction_level(("<topic>", "research")) == 1
        assert template_abstraction_level(("hpc", "research")) == 0


class TestTemplateMatching:
    def test_template_abstracts_matching_query(self):
        system = _system()
        assert template_abstracts(("<topic>", "<journal>"), ("ai", "jmlr"), system)
        assert template_abstracts(("<topic>", "research"), ("hpc", "research"), system)

    def test_template_rejects_wrong_type(self):
        system = _system()
        assert not template_abstracts(("<topic>", "<journal>"), ("jmlr", "ai"), system)

    def test_template_rejects_wrong_literal(self):
        system = _system()
        assert not template_abstracts(("<topic>", "research"), ("hpc", "papers"), system)

    def test_template_rejects_length_mismatch(self):
        system = _system()
        assert not template_abstracts(("<topic>",), ("hpc", "research"), system)

    def test_cross_entity_generalisation(self):
        # The key property of Sect. IV-A: queries of different entities share
        # templates even though the concrete words differ (Fig. 3).
        system = _system()
        snir = ("hpc", "ijhpca")
        yu = ("data_mining", "tkde")
        ng = ("ai", "jmlr")
        shared = set(abstract_query(snir, system)) & set(abstract_query(yu, system)) \
            & set(abstract_query(ng, system))
        assert ("<topic>", "<journal>") in shared


class TestTemplateIndex:
    def test_add_query_caches(self):
        index = TemplateIndex(_system())
        first = index.add_query(("hpc", "research"))
        second = index.add_query(("hpc", "research"))
        assert first == second
        assert index.templates_of(("hpc", "research")) == first

    def test_queries_of_template(self):
        index = TemplateIndex(_system())
        index.add_queries([("hpc", "research"), ("ai", "research")])
        queries = index.queries_of(("<topic>", "research"))
        assert queries == frozenset({("hpc", "research"), ("ai", "research")})

    def test_unknown_query_empty(self):
        index = TemplateIndex(_system())
        assert index.templates_of(("zzz",)) == ()
        assert index.queries_of(("<topic>",)) == frozenset()

    def test_len_counts_templates(self):
        index = TemplateIndex(_system())
        index.add_query(("hpc", "ijhpca"))
        assert len(index) >= 3
