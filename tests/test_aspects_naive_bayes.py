"""Tests for the multinomial Naive Bayes classifier."""

import pytest

from repro.aspects.naive_bayes import MultinomialNaiveBayes


def _toy_training_set():
    documents = [
        {"award": 2, "received": 1},
        {"award": 1, "winner": 1},
        {"prize": 1, "award": 1},
        {"research": 2, "parallel": 1},
        {"research": 1, "papers": 2},
        {"parallel": 1, "systems": 1},
    ]
    labels = [1, 1, 1, 0, 0, 0]
    return documents, labels


class TestFit:
    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit([{"a": 1}], [0, 1])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit([{"a": -1}], [0])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes(alpha=0.0)

    def test_classes_recorded(self):
        docs, labels = _toy_training_set()
        model = MultinomialNaiveBayes().fit(docs, labels)
        assert set(model.classes) == {0, 1}


class TestPredict:
    def setup_method(self):
        docs, labels = _toy_training_set()
        self.model = MultinomialNaiveBayes().fit(docs, labels)

    def test_predicts_obvious_classes(self):
        assert self.model.predict({"award": 3}) == 1
        assert self.model.predict({"research": 3, "parallel": 1}) == 0

    def test_predict_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MultinomialNaiveBayes().predict({"a": 1})

    def test_predict_many(self):
        predictions = self.model.predict_many([{"award": 1}, {"research": 1}])
        assert predictions == [1, 0]

    def test_predict_many_matrix_matches_scalar_loop(self):
        from repro.aspects.features import FeatureMatrix

        evaluation = [{"award": 1}, {"research": 1}, {},
                      {"novel": 2, "award": 1}, {"prize": 1, "papers": 3}]
        matrix = FeatureMatrix.from_dicts(evaluation)
        assert self.model.predict_many(matrix) == \
            [self.model.predict(features) for features in evaluation]

    def test_predict_proba_normalised(self):
        probabilities = self.model.predict_proba({"award": 1, "research": 1})
        assert sum(probabilities.values()) == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 for p in probabilities.values())

    def test_unknown_features_fall_back_to_prior(self):
        probabilities = self.model.predict_proba({"zzz": 1})
        # Balanced training set: unknown evidence gives roughly the prior.
        assert probabilities[0] == pytest.approx(0.5, abs=0.1)

    def test_score_accuracy(self):
        docs, labels = _toy_training_set()
        assert self.model.score(docs, labels) == 1.0

    def test_score_empty(self):
        assert self.model.score([], []) == 0.0

    def test_score_length_mismatch(self):
        with pytest.raises(ValueError):
            self.model.score([{"a": 1}], [])


class TestSingleClass:
    def test_single_class_training_predicts_that_class(self):
        model = MultinomialNaiveBayes().fit([{"a": 1}, {"b": 1}], [1, 1])
        assert model.predict({"c": 1}) == 1
