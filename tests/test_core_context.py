"""Tests for context-aware collective utilities (Sect. V)."""

import pytest

from repro.aspects.relevance import OracleRelevance
from repro.core.config import L2QConfig
from repro.core.context import CollectiveUtilities, ContextTracker
from repro.core.entity_phase import EntityPhase


@pytest.fixture(scope="module")
def entity_utilities(researcher_corpus):
    entity_id = researcher_corpus.entity_ids()[-1]
    entity = researcher_corpus.get_entity(entity_id)
    pages = researcher_corpus.pages_of(entity_id)[:5]
    phase = EntityPhase(researcher_corpus.type_system, L2QConfig())
    return phase.compute(entity, pages, OracleRelevance("RESEARCH"), domain_model=None)


class TestCollectiveUtilities:
    def test_balanced_is_geometric_mean(self):
        collective = CollectiveUtilities(query=("q",), collective_recall=0.5,
                                         collective_recall_all=1.0)
        assert collective.collective_precision == pytest.approx(0.5)
        assert collective.balanced == pytest.approx((0.5 * 0.5) ** 0.5)

    def test_precision_handles_zero_denominator(self):
        collective = CollectiveUtilities(query=("q",), collective_recall=0.2,
                                         collective_recall_all=0.0)
        assert collective.collective_precision >= 0.0

    def test_precision_not_clamped_to_one(self):
        collective = CollectiveUtilities(query=("q",), collective_recall=0.6,
                                         collective_recall_all=0.3)
        assert collective.collective_precision == pytest.approx(2.0)


class TestContextTracker:
    def test_invalid_r0(self):
        with pytest.raises(ValueError):
            ContextTracker(seed_recall_r0=0.0)
        with pytest.raises(ValueError):
            ContextTracker(seed_recall_r0=1.0)

    def test_initial_context_is_seed_recall(self):
        tracker = ContextTracker(seed_recall_r0=0.3)
        assert tracker.context_recall == pytest.approx(0.3)
        assert tracker.context_recall_all == pytest.approx(0.3)
        assert len(tracker) == 0

    def test_inclusion_exclusion_formula(self, entity_utilities):
        tracker = ContextTracker(seed_recall_r0=0.3)
        query = entity_utilities.candidates[0]
        collective = tracker.evaluate(query, entity_utilities)
        recall_q = entity_utilities.recall.query(query)
        redundancy = entity_utilities.recall_current.query(query) * 0.3
        assert collective.collective_recall == pytest.approx(
            min(max(0.3 + recall_q - redundancy, 0.0), 1.0))

    def test_collective_recall_never_decreases_below_context(self, entity_utilities):
        # Adding a query can only add pages: R(Phi u {q}) >= R(Phi) because
        # the redundancy term is at most R(q)'s contribution.
        tracker = ContextTracker(seed_recall_r0=0.3)
        for query in entity_utilities.candidates[:20]:
            collective = tracker.evaluate(query, entity_utilities)
            assert collective.collective_recall >= tracker.context_recall - 1e-9

    def test_update_moves_context(self, entity_utilities):
        tracker = ContextTracker(seed_recall_r0=0.3)
        query = max(entity_utilities.candidates,
                    key=lambda q: entity_utilities.recall.query(q))
        before = tracker.context_recall
        tracker.update(query, entity_utilities)
        assert tracker.context_recall >= before
        assert tracker.past_queries == [query]
        assert len(tracker) == 1

    def test_context_recall_bounded_by_one(self, entity_utilities):
        tracker = ContextTracker(seed_recall_r0=0.9)
        for query in entity_utilities.candidates[:10]:
            tracker.update(query, entity_utilities)
        assert tracker.context_recall <= 1.0
        assert tracker.context_recall_all <= 1.0

    def test_redundant_query_adds_less_than_fresh_one(self, entity_utilities):
        """A query whose pages are already covered contributes less gain."""
        tracker = ContextTracker(seed_recall_r0=0.3)
        candidates = entity_utilities.candidates
        gains = {}
        for query in candidates[:50]:
            collective = tracker.evaluate(query, entity_utilities)
            gains[query] = collective.collective_recall - tracker.context_recall
        redundancies = {q: entity_utilities.recall_current.query(q) for q in gains}
        # The query with the largest redundancy should not have the largest gain
        # unless its raw recall is also the largest.
        most_redundant = max(gains, key=lambda q: redundancies[q])
        best_gain = max(gains, key=lambda q: gains[q])
        if most_redundant != best_gain:
            assert gains[most_redundant] <= gains[best_gain]

    def test_separate_seed_recall_for_all_pages(self):
        tracker = ContextTracker(seed_recall_r0=0.3, seed_recall_all=0.5)
        assert tracker.context_recall == pytest.approx(0.3)
        assert tracker.context_recall_all == pytest.approx(0.5)
