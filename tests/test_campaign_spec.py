"""Tests for campaign specs and their compilation to keyed cells."""

import json
from dataclasses import replace

import pytest

from repro.campaign import CampaignSpec, compile_cells, spec_from_preset
from repro.eval.experiments import ExperimentScale
from repro.exec.specs import stable_key
from repro.store import StoreHandle

#: Smallest scale that still exercises the full protocol.
TINY_SCALE = ExperimentScale(
    name="tiny",
    num_entities={"researcher": 12, "car": 10},
    pages_per_entity=8,
    num_splits=1,
    max_test_entities=2,
    max_aspects=2,
    num_queries_list=(2,),
    corpus_seed=11,
)


def tiny_spec(**overrides):
    base = dict(name="unit", scale=TINY_SCALE, domains=("car",),
                scenarios=("zipf-skew",), methods=("MQ", "RND"),
                seeds=(11, 12), num_queries=2)
    base.update(overrides)
    return CampaignSpec(**base)


class TestSerialisation:
    def test_json_round_trip_is_identity(self):
        spec = tiny_spec()
        clone = CampaignSpec.from_json_dict(spec.to_json_dict())
        assert clone == spec
        assert clone.to_json() == spec.to_json()

    def test_scale_is_embedded_by_value(self):
        doc = tiny_spec().to_json_dict()
        assert doc["scale"]["num_entities"] == {"researcher": 12, "car": 10}
        assert doc["scale"]["pages_per_entity"] == 8
        # No preset-name indirection anywhere in the document.
        assert "preset" not in doc

    def test_save_load_round_trip(self, tmp_path):
        spec = tiny_spec()
        path = spec.save(tmp_path / "nested" / "spec.json")
        assert CampaignSpec.load(path) == spec

    def test_unknown_schema_rejected(self):
        doc = tiny_spec().to_json_dict()
        doc["schema"] = "CampaignSpec/v999"
        with pytest.raises(ValueError, match="schema"):
            CampaignSpec.from_json_dict(doc)

    def test_config_round_trips(self):
        from repro.core.config import L2QConfig

        config = L2QConfig()
        config.dedup_penalty = 0.5
        spec = tiny_spec(config=config)
        clone = CampaignSpec.from_json_dict(
            json.loads(json.dumps(spec.to_json_dict())))
        assert clone.config.dedup_penalty == 0.5


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            tiny_spec(scenarios=("no-such-scenario",))

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown methods"):
            tiny_spec(methods=("NOPE",))

    def test_ideal_pseudo_method_rejected(self):
        with pytest.raises(ValueError, match="unknown methods"):
            tiny_spec(methods=("IDEAL",))

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError, match="unknown domains"):
            tiny_spec(domains=("spaceship",))

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="duplicate seeds"):
            tiny_spec(seeds=(11, 11))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            tiny_spec(seeds=())

    def test_slash_in_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            tiny_spec(name="a/b")

    def test_bad_store_mode_rejected(self):
        with pytest.raises(ValueError, match="corpus-store"):
            tiny_spec(corpus_store="carrier-pigeon")

    def test_preset_rejects_unknown_domain(self):
        with pytest.raises(ValueError, match="unknown domains"):
            spec_from_preset("x", "smoke", ["spaceship"], ["zipf-skew"],
                             ["MQ"], [11])


class TestCompilation:
    def test_cell_list_is_deterministic(self):
        spec = tiny_spec()
        first = compile_cells(spec)
        second = compile_cells(spec)
        assert [c.key for c in first] == [c.key for c in second]
        assert [c.spec for c in first] == [c.spec for c in second]

    def test_covers_seeds_domains_and_clean(self):
        cells = compile_cells(tiny_spec(domains=("car", "researcher")))
        # 2 seeds x 2 domains x (clean + 1 scenario)
        assert len(cells) == 8
        assert {(c.seed, c.domain, c.scenario) for c in cells} == {
            (seed, domain, scenario)
            for seed in (11, 12)
            for domain in ("car", "researcher")
            for scenario in (None, "zipf-skew")
        }

    def test_keys_are_unique(self):
        cells = compile_cells(tiny_spec(domains=("car", "researcher")))
        assert len({c.key for c in cells}) == len(cells)

    def test_key_ignores_transport_fields(self):
        cell = compile_cells(tiny_spec())[0]
        handle = StoreHandle(mode="shm", name="bogus", size=1, digest="d")
        transported = replace(
            cell.spec,
            corpus=replace(cell.spec.corpus, store_handle=handle),
            base_slots=99,
        )
        assert transported.cell_key() == cell.key

    def test_key_changes_with_denotation(self):
        spec = tiny_spec()
        cells = {c.key for c in compile_cells(spec)}
        shifted = {c.key for c in compile_cells(replace(spec, seeds=(13,)))}
        assert cells.isdisjoint(shifted)
        fewer_queries = {c.key
                         for c in compile_cells(replace(spec, num_queries=1))}
        assert cells.isdisjoint(fewer_queries)

    def test_different_seeds_realise_different_corpora(self):
        cells = compile_cells(tiny_spec())
        seeds = {c.spec.corpus.seed for c in cells}
        assert seeds == {11, 12}

    def test_stable_key_is_order_insensitive(self):
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})
        assert stable_key({"a": 1}) != stable_key({"a": 2})
