"""Tests for the robustness sweep (selectors × scenarios)."""

import json

import pytest

from repro.eval.experiments import ExperimentScale
from repro.eval.reporting import format_scenarios
from repro.core.config import L2QConfig
from repro.eval.scenario_sweep import (
    DEFAULT_SWEEP_METHODS,
    SCHEMA,
    ScenarioSweep,
    expand_config_grid,
    expand_severity_grid,
    run_scenario_sweep,
)
from repro.scenarios import ScenarioSpec, ZipfPageSkew, make_scenario

#: Smallest scale that still exercises the full protocol.
TINY_SCALE = ExperimentScale(
    name="tiny",
    num_entities={"researcher": 12, "car": 10},
    pages_per_entity=8,
    num_splits=1,
    max_test_entities=2,
    max_aspects=2,
    num_queries_list=(2,),
    corpus_seed=11,
)

SCENARIOS = ("zipf-skew", "near-duplicates")


@pytest.fixture(scope="module")
def sweep_result():
    return run_scenario_sweep(scale=TINY_SCALE, scenarios=SCENARIOS,
                              methods=("L2QBAL", "MQ"),
                              domains=("researcher",), num_queries=2)


class TestSweepStructure:
    def test_matrix_covers_scenarios_and_methods(self, sweep_result):
        assert sweep_result.scenarios == list(SCENARIOS)
        cells = sweep_result.cells_by_domain["researcher"]
        assert set(cells) == set(SCENARIOS)
        for cell in cells.values():
            assert set(cell.f_delta) == {"L2QBAL", "MQ"}
            assert set(cell.metrics) == {"L2QBAL", "MQ"}
            for metrics in cell.metrics.values():
                assert set(metrics) == {"precision", "recall", "f_score"}

    def test_deltas_are_scenario_minus_clean(self, sweep_result):
        clean = sweep_result.clean_by_domain["researcher"]["metrics"]
        for name in SCENARIOS:
            cell = sweep_result.cells_by_domain["researcher"][name]
            for method in ("L2QBAL", "MQ"):
                expected = cell.metrics[method]["f_score"] - clean[method]["f_score"]
                assert sweep_result.f_delta("researcher", name, method) == expected

    def test_perturbed_corpora_differ_from_clean(self, sweep_result):
        clean_digest = sweep_result.clean_by_domain["researcher"]["corpus_digest"]
        for cell in sweep_result.cells_by_domain["researcher"].values():
            assert cell.corpus_digest != clean_digest

    def test_mean_f_delta_averages_domains_and_methods(self, sweep_result):
        name = SCENARIOS[0]
        cell = sweep_result.cells_by_domain["researcher"][name]
        expected = (cell.f_delta["L2QBAL"] + cell.f_delta["MQ"]) / 2
        assert sweep_result.mean_f_delta(name) == pytest.approx(expected)

    def test_json_dict_shape(self, sweep_result):
        report = sweep_result.to_json_dict()
        assert report["schema"] == SCHEMA
        assert report["scale"] == "tiny"
        assert report["seed"] == TINY_SCALE.corpus_seed
        assert report["scenarios"] == list(SCENARIOS)
        block = report["domains"]["researcher"]
        assert set(block["scenarios"]) == set(SCENARIOS)
        for name in SCENARIOS:
            assert name in report["summary"]
            assert "mean_f_delta" in report["summary"][name]
        # The rendering must survive a JSON round-trip unchanged.
        assert json.loads(json.dumps(report)) == report

    def test_absolute_metrics_alongside_normalised(self, sweep_result):
        report = sweep_result.to_json_dict()
        block = report["domains"]["researcher"]
        assert set(block["clean"]["absolute_metrics"]) == {"L2QBAL", "MQ"}
        for name in SCENARIOS:
            cell = block["scenarios"][name]
            assert set(cell["absolute_metrics"]) == {"L2QBAL", "MQ"}
            assert set(cell["absolute_f_delta"]) == {"L2QBAL", "MQ"}
            # Absolute deltas are scenario minus clean, like the normalised.
            for method in ("L2QBAL", "MQ"):
                expected = (cell["absolute_metrics"][method]["f_score"]
                            - block["clean"]["absolute_metrics"][method]["f_score"])
                assert cell["absolute_f_delta"][method] == expected
            assert "mean_absolute_f_delta" in report["summary"][name]

    def test_duplicate_waste_and_fetch_blocks(self, sweep_result):
        report = sweep_result.to_json_dict()
        block = report["domains"]["researcher"]
        for cell in [block["clean"]] + [block["scenarios"][n] for n in SCENARIOS]:
            assert set(cell["duplicate_waste"]) == {"L2QBAL", "MQ"}
            for value in cell["duplicate_waste"].values():
                assert 0.0 <= value <= 1.0
            fetch = cell["fetch"]
            assert fetch["queries_fired"] > 0
            assert fetch["pages_fetched"] > 0
            assert fetch["cache_hits"] + fetch["cache_misses"] > 0
        for name in SCENARIOS:
            assert "mean_duplicate_waste" in report["summary"][name]

    def test_near_duplicates_raise_waste_over_clean(self, sweep_result):
        # The scenario's whole point: injected near-copies get fetched.
        block = sweep_result.to_json_dict()["domains"]["researcher"]
        clean = block["clean"]["duplicate_waste"]["L2QBAL"]
        scenario = block["scenarios"]["near-duplicates"]["duplicate_waste"]["L2QBAL"]
        assert scenario > clean

    def test_absolute_f_scores_bounded(self, sweep_result):
        # Absolute metrics are raw precision/recall/F in [0, 1]; normalised
        # values may exceed 1 when a method beats the degraded ideal.
        report = sweep_result.to_json_dict()
        for name in SCENARIOS:
            cell = report["domains"]["researcher"]["scenarios"][name]
            for metrics in cell["absolute_metrics"].values():
                for value in metrics.values():
                    assert 0.0 <= value <= 1.0


class TestDeterminism:
    def test_same_seed_reproduces_json_byte_for_byte(self):
        kwargs = dict(scale=TINY_SCALE, scenarios=("zipf-skew",),
                      methods=("L2QBAL",), domains=("researcher",),
                      num_queries=2)
        first = run_scenario_sweep(**kwargs).to_json()
        second = run_scenario_sweep(**kwargs).to_json()
        assert first == second

    def test_worker_count_does_not_change_result(self):
        kwargs = dict(scale=TINY_SCALE, scenarios=("zipf-skew",),
                      methods=("L2QBAL",), domains=("researcher",),
                      num_queries=2)
        serial = run_scenario_sweep(workers=1, **kwargs).to_json()
        parallel = run_scenario_sweep(workers=4, **kwargs).to_json()
        assert serial == parallel


class TestOutput:
    def test_write_creates_parent_dirs(self, sweep_result, tmp_path):
        path = sweep_result.write(tmp_path / "nested" / "BENCH_scenarios.json")
        assert path.exists()
        assert json.loads(path.read_text(encoding="utf-8"))["scale"] == "tiny"

    def test_format_scenarios_renders_matrix(self, sweep_result):
        text = format_scenarios(sweep_result)
        assert "clean" in text
        for name in SCENARIOS:
            assert name in text
        assert "Mean F-score delta" in text


class TestValidation:
    def test_requires_methods(self):
        with pytest.raises(ValueError, match="method"):
            ScenarioSweep(scale=TINY_SCALE, methods=())

    def test_unknown_scenario_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ScenarioSweep(scale=TINY_SCALE, scenarios=("no-such-scenario",))

    def test_unknown_method_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown methods"):
            ScenarioSweep(scale=TINY_SCALE, methods=("L2QBall",))

    def test_ideal_pseudo_method_rejected(self):
        # IDEAL is the normalisation denominator: sweeping it would emit an
        # all-1.0 matrix with zero deltas.
        with pytest.raises(ValueError, match="IDEAL"):
            ScenarioSweep(scale=TINY_SCALE, methods=("L2QBAL", "IDEAL"))

    def test_duplicate_scenarios_rejected(self):
        with pytest.raises(ValueError, match="duplicate scenarios"):
            ScenarioSweep(scale=TINY_SCALE,
                          scenarios=("zipf-skew", "zipf-skew"))

    def test_unknown_domain_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown domains"):
            ScenarioSweep(scale=TINY_SCALE, domains=("researcher", "carz"))

    def test_accepts_prebuilt_specs(self):
        spec = ScenarioSpec(name="inline", description="ad hoc",
                            perturbations=(ZipfPageSkew(),))
        sweep = ScenarioSweep(scale=TINY_SCALE, scenarios=(spec,))
        assert sweep.specs == [spec]

    def test_default_scenarios_cover_registry(self):
        sweep = ScenarioSweep(scale=TINY_SCALE)
        assert len(sweep.specs) >= 4
        assert set(DEFAULT_SWEEP_METHODS) == {"L2QP", "L2QR", "L2QBAL"}


class TestSeverityGrid:
    def test_expand_names_and_metadata(self):
        specs, grid = expand_severity_grid(["zipf-skew"], "exponent",
                                           [0.5, 1.0, 1.5])
        assert [s.name for s in specs] == ["zipf-skew@exponent=0.5",
                                           "zipf-skew@exponent=1.0",
                                           "zipf-skew@exponent=1.5"]
        assert grid == {"param": "exponent", "values": [0.5, 1.0, 1.5],
                        "scenarios": ["zipf-skew"]}
        # Each spec carries the severity in its perturbation pipeline.
        assert [s.perturbations[0].exponent for s in specs] == [0.5, 1.0, 1.5]

    def test_expand_rejects_unknown_parameter(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            expand_severity_grid(["zipf-skew"], "warp_factor", [9])

    def test_expand_reports_bad_value_as_value_error(self):
        # A malformed value must not be misreported as an unknown parameter
        # (the factory *does* accept `exponent`; "0.5x" is the problem).
        with pytest.raises(ValueError, match="invalid value '0.5x'"):
            expand_severity_grid(["zipf-skew"], "exponent", ["0.5x"])
        with pytest.raises(ValueError, match="invalid value -1"):
            expand_severity_grid(["zipf-skew"], "exponent", [-1])

    def test_expand_rejects_empty_values(self):
        with pytest.raises(ValueError, match="at least one value"):
            expand_severity_grid(["zipf-skew"], "exponent", [])

    def test_grid_sweep_produces_curve_cells(self):
        specs, grid = expand_severity_grid(["zipf-skew"], "exponent",
                                           [0.5, 1.5])
        result = ScenarioSweep(scale=TINY_SCALE, scenarios=specs,
                               methods=("MQ",), domains=("researcher",),
                               num_queries=2, param_grid=grid).run()
        report = result.to_json_dict()
        assert report["param_grid"] == grid
        cells = report["domains"]["researcher"]["scenarios"]
        assert set(cells) == {"zipf-skew@exponent=0.5", "zipf-skew@exponent=1.5"}
        # Severities perturb the corpus differently, so the digests differ:
        # the matrix holds one real cell per grid point (a curve, not a dot).
        digests = {cell["corpus_digest"] for cell in cells.values()}
        assert len(digests) == 2


class TestConfigGrid:
    def test_expand_names_configs_and_metadata(self):
        specs, grid, configs = expand_config_grid(
            ["near-duplicates"], "dedup_penalty", [0.0, 0.5])
        assert [s.name for s in specs] == ["near-duplicates@dedup_penalty=0.0",
                                          "near-duplicates@dedup_penalty=0.5"]
        assert grid == {"param": "dedup_penalty", "values": [0.0, 0.5],
                        "scenarios": ["near-duplicates"], "target": "config"}
        assert configs["near-duplicates@dedup_penalty=0.5"].dedup_penalty == 0.5
        # The perturbation pipeline is the *same* for every grid point —
        # only the learner config varies.
        pipelines = {tuple(s.perturbations) for s in specs}
        assert len(pipelines) == 1

    def test_expand_preserves_base_config(self):
        base = L2QConfig(ranker="bm25")
        _, _, configs = expand_config_grid(["near-duplicates"],
                                           "dedup_penalty", [0.3],
                                           base_config=base)
        config = configs["near-duplicates@dedup_penalty=0.3"]
        assert config.ranker == "bm25"
        assert config.dedup_penalty == 0.3
        assert base.dedup_penalty == 0.0  # the base is not mutated

    def test_expand_rejects_non_config_parameter(self):
        with pytest.raises(ValueError, match="not an L2QConfig field"):
            expand_config_grid(["zipf-skew"], "exponent", [0.5])

    @pytest.mark.parametrize("param", ["num_queries", "random_seed"])
    def test_expand_rejects_fields_the_sweep_ignores(self, param):
        # The budget comes from --queries and seeds derive from base_seed:
        # a grid over either would emit byte-identical cells.
        with pytest.raises(ValueError, match="ignored by the sweep"):
            expand_config_grid(["zipf-skew"], param, [1, 5])

    def test_expand_rejects_invalid_value(self):
        with pytest.raises(ValueError, match="invalid value 7"):
            expand_config_grid(["zipf-skew"], "dedup_penalty", [7])

    def test_sweep_rejects_orphan_config_overrides(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            ScenarioSweep(scale=TINY_SCALE, scenarios=("zipf-skew",),
                          config_by_scenario={"no-such-cell": L2QConfig()})

    def test_config_grid_cells_share_corpus_but_not_config(self):
        specs, grid, configs = expand_config_grid(
            ["near-duplicates"], "dedup_penalty", [0.0, 0.5])
        result = ScenarioSweep(scale=TINY_SCALE, scenarios=specs,
                               methods=("L2QBAL",), domains=("researcher",),
                               num_queries=2, param_grid=grid,
                               config_by_scenario=configs).run()
        cells = result.to_json_dict()["domains"]["researcher"]["scenarios"]
        off = cells["near-duplicates@dedup_penalty=0.0"]
        on = cells["near-duplicates@dedup_penalty=0.5"]
        # Same corpus condition (one digest), different learner behaviour.
        assert off["corpus_digest"] == on["corpus_digest"]
        assert set(off["duplicate_waste"]) == {"L2QBAL"}
