"""Tests for the type system (knowledge base)."""

from repro.corpus.knowledge_base import TypeSystem, build_type_system, default_regex_types


class TestCanonicalisation:
    def test_lowercases_and_underscores(self):
        assert TypeSystem.canonical("Data Mining") == "data_mining"

    def test_strips_whitespace(self):
        assert TypeSystem.canonical("  hpc  ") == "hpc"


class TestDictionaryTypes:
    def setup_method(self):
        self.system = build_type_system({
            "topic": ["data mining", "hpc"],
            "journal": ["tkde", "jmlr"],
        })

    def test_types_of_known_word(self):
        assert self.system.types_of("hpc") == ("topic",)
        assert self.system.types_of("data_mining") == ("topic",)

    def test_types_of_accepts_uncanonical_form(self):
        assert self.system.types_of("Data Mining") == ("topic",)

    def test_types_of_unknown_word(self):
        assert self.system.types_of("banana") == ()

    def test_word_in_multiple_types(self):
        system = TypeSystem()
        system.add_word("topic", "security")
        system.add_word("feature", "security")
        assert system.types_of("security") == ("feature", "topic")

    def test_primary_type(self):
        assert self.system.primary_type("tkde") == "journal"
        assert self.system.primary_type("banana") is None

    def test_known_phrases_only_multiword(self):
        assert self.system.known_phrases() == frozenset({"data_mining"})

    def test_words_of(self):
        assert self.system.words_of("journal") == frozenset({"tkde", "jmlr"})

    def test_contains(self):
        assert "hpc" in self.system
        assert "banana" not in self.system

    def test_type_names_sorted_and_include_regex_types(self):
        names = self.system.type_names()
        assert names == sorted(names)
        assert {"journal", "topic", "email", "url"} <= set(names)


class TestRegexTypes:
    def setup_method(self):
        self.system = build_type_system({"topic": ["hpc"]})

    def test_email(self):
        assert self.system.types_of("john.doe@cs.example.edu") == ("email",)

    def test_url(self):
        assert self.system.types_of("www.example.edu/home") == ("url",)

    def test_phonenum(self):
        assert self.system.types_of("+1-555-0142") == ("phonenum",)

    def test_year(self):
        assert self.system.types_of("2009") == ("year",)
        assert self.system.types_of("3009") == ()

    def test_dictionary_takes_precedence_over_regex(self):
        system = build_type_system({"award": ["2009"]})
        assert system.types_of("2009") == ("award",)

    def test_default_regex_types_cover_expected_names(self):
        names = {name for name, _ in default_regex_types()}
        assert names == {"email", "url", "phonenum", "year"}
