"""Tests for the per-aspect classifier suite (the Fig. 9 infrastructure)."""

import pytest

from tests.helpers import make_page

from repro.aspects.classifier import AspectClassifierSuite


@pytest.fixture(scope="module")
def trained_suite(researcher_corpus):
    return AspectClassifierSuite.train_on_corpus(researcher_corpus, seed=3)


class TestTraining:
    def test_requires_aspects(self):
        with pytest.raises(ValueError):
            AspectClassifierSuite([])

    def test_requires_paragraphs(self):
        with pytest.raises(ValueError):
            AspectClassifierSuite(["RESEARCH"]).fit([])

    def test_invalid_holdout_fraction(self, researcher_corpus):
        suite = AspectClassifierSuite(researcher_corpus.aspects)
        with pytest.raises(ValueError):
            suite.fit(list(researcher_corpus.iter_paragraphs()), holdout_fraction=1.0)

    def test_degenerate_holdout_leaves_no_training_data(self, researcher_corpus):
        # Regression: a fraction whose product rounds up to the full corpus
        # used to fall back to training on the holdout itself, silently
        # leaking the Fig. 9 evaluation set into the models.
        class FullHoldout(float):
            def __rmul__(self, other):
                return float(other)

        suite = AspectClassifierSuite(researcher_corpus.aspects)
        paragraphs = list(researcher_corpus.iter_paragraphs())[:8]
        with pytest.raises(ValueError, match="leaving no training data"):
            suite.fit(paragraphs, holdout_fraction=FullHoldout(0.5))

    def test_unfitted_suite_raises(self, researcher_corpus):
        suite = AspectClassifierSuite(researcher_corpus.aspects)
        page = next(researcher_corpus.iter_pages())
        with pytest.raises(RuntimeError):
            suite.classify_page(page, "RESEARCH")


class TestAccuracy:
    def test_report_covers_every_aspect(self, trained_suite, researcher_corpus):
        report = trained_suite.accuracy_report()
        assert [row.aspect for row in report] == researcher_corpus.aspects

    def test_accuracy_in_papers_band(self, trained_suite, researcher_corpus):
        # Paper Fig. 9: classifier accuracy between 0.85 and 0.99.
        for aspect in researcher_corpus.aspects:
            assert trained_suite.accuracy_of(aspect) >= 0.80

    def test_frequency_matches_corpus(self, trained_suite, researcher_corpus):
        for row in trained_suite.accuracy_report():
            assert row.paragraph_frequency == \
                researcher_corpus.aspect_paragraph_count(row.aspect)


class TestPrediction:
    def test_classify_paragraph_binary(self, trained_suite, researcher_corpus):
        paragraph = next(researcher_corpus.iter_paragraphs())
        assert trained_suite.classify_paragraph(paragraph, "RESEARCH") in (0, 1)

    def test_page_relevant_if_any_paragraph_relevant(self, trained_suite):
        page = make_page("pX", "eX", [
            (["conducts", "research", "parallel_computing", "papers", "published",
              "research", "projects"], "RESEARCH"),
            (["visit", "siebel", "center"], None),
        ])
        assert trained_suite.classify_page(page, "RESEARCH") == 1

    def test_page_probability_bounds(self, trained_suite, researcher_corpus):
        for page in list(researcher_corpus.iter_pages())[:20]:
            probability = trained_suite.page_probability(page, "RESEARCH")
            assert 0.0 <= probability <= 1.0

    def test_empty_page_probability_zero(self, trained_suite):
        from repro.corpus.document import Page
        empty = Page(page_id="empty", entity_id="eX", paragraphs=())
        assert trained_suite.page_probability(empty, "RESEARCH") == 0.0

    def test_page_level_agreement_with_ground_truth(self, trained_suite, researcher_corpus):
        # The classifier output is treated as ground truth by the paper, so
        # page-level agreement on the synthetic corpus should be high.
        agreements = 0
        total = 0
        for page in list(researcher_corpus.iter_pages())[:100]:
            for aspect in ("RESEARCH", "CONTACT"):
                total += 1
                predicted = trained_suite.classify_page(page, aspect)
                actual = int(page.has_aspect(aspect))
                agreements += int(predicted == actual)
        assert agreements / total >= 0.75
