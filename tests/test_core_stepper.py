"""The step-driven harvest loop: protocol, bit-identity, budget honesty."""

import pytest

from repro.core.harvester import CLIENT_TIME, drive_stepper
from repro.core.stepper import (
    DONE,
    Done,
    QueryFetch,
    SeedFetch,
    StepperProtocolError,
)
from repro.search.clients import InstantClient

from tests.helpers import harvest_signature

ASPECT = "RESEARCH"


def _stepper(runner, prepared, method="RND", num_queries=2, entity=None):
    entity_id = entity or list(prepared.split.test_entities)[0]
    job = runner.build_job(prepared, method, entity_id, ASPECT, num_queries)
    return runner.harvester_for(prepared).stepper_for_job(job)


class TestStepperProtocol:
    def test_first_action_is_the_seed_fetch(self, researcher_runner,
                                            researcher_prepared):
        stepper = _stepper(researcher_runner, researcher_prepared)
        action = stepper.next_action()
        assert isinstance(action, SeedFetch)
        assert action.entity_id == stepper.result.entity_id
        assert action.request_key == (action.entity_id, ASPECT, "RND", "seed")

    def test_next_action_is_idempotent_until_fed(self, researcher_runner,
                                                 researcher_prepared):
        stepper = _stepper(researcher_runner, researcher_prepared)
        first = stepper.next_action()
        assert stepper.next_action() is first

    def test_query_actions_carry_index_and_request_key(self, researcher_runner,
                                                       researcher_prepared):
        stepper = _stepper(researcher_runner, researcher_prepared)
        client = InstantClient(researcher_prepared.engine)
        seed = stepper.next_action()
        outcome = client.fetch(seed, accounting=stepper.accounting)
        stepper.feed(outcome.results, outcome.pages)
        action = stepper.next_action()
        assert isinstance(action, QueryFetch)
        assert action.index == 0
        assert action.request_key == (action.entity_id, ASPECT, "RND", "0")

    def test_feed_after_done_raises(self, researcher_runner,
                                    researcher_prepared):
        stepper = _stepper(researcher_runner, researcher_prepared,
                           num_queries=0)
        stepper.feed([], [])  # the seed fetch is pre-armed at construction
        assert stepper.next_action() is DONE
        with pytest.raises(StepperProtocolError):
            stepper.feed([], [])

    def test_feed_twice_for_one_action_raises(self, researcher_runner,
                                              researcher_prepared):
        stepper = _stepper(researcher_runner, researcher_prepared)
        stepper.next_action()
        stepper.feed([], [])
        with pytest.raises(StepperProtocolError):
            stepper.feed([], [])

    def test_done_after_budget_exhausted(self, researcher_runner,
                                         researcher_prepared):
        stepper = _stepper(researcher_runner, researcher_prepared,
                           num_queries=1)
        client = InstantClient(researcher_prepared.engine)
        for _ in range(2):  # seed + one query
            action = stepper.next_action()
            outcome = client.fetch(action, accounting=stepper.accounting)
            stepper.feed(outcome.results, outcome.pages)
        assert stepper.done
        assert stepper.next_action() is DONE
        assert isinstance(stepper.next_action(), Done)

    def test_zero_budget_finishes_after_the_seed(self, researcher_runner,
                                                 researcher_prepared):
        stepper = _stepper(researcher_runner, researcher_prepared,
                           num_queries=0)
        client = InstantClient(researcher_prepared.engine)
        action = stepper.next_action()
        outcome = client.fetch(action, accounting=stepper.accounting)
        stepper.feed(outcome.results, outcome.pages)
        assert stepper.next_action() is DONE
        assert stepper.result.iterations == []


class TestBitIdentity:
    def test_driven_stepper_matches_harvest(self, researcher_runner,
                                            researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        entity_id = list(researcher_prepared.split.test_entities)[0]
        jobs = [researcher_runner.build_job(researcher_prepared, method,
                                            entity_id, ASPECT, 2)
                for method in ("RND", "MQ", "L2QBAL")]
        via_harvest = [harvester.harvest_job(job) for job in jobs]
        rebuilt = [researcher_runner.build_job(researcher_prepared, method,
                                               entity_id, ASPECT, 2)
                   for method in ("RND", "MQ", "L2QBAL")]
        via_stepper = [
            drive_stepper(harvester.stepper_for_job(job),
                          InstantClient(researcher_prepared.engine))
            for job in rebuilt]
        assert [harvest_signature(r) for r in via_stepper] == \
            [harvest_signature(r) for r in via_harvest]

    def test_fetch_seconds_alias_preserved(self, researcher_runner,
                                           researcher_prepared):
        stepper = _stepper(researcher_runner, researcher_prepared)
        result = drive_stepper(stepper,
                               InstantClient(researcher_prepared.engine))
        assert result.iterations
        for record in result.iterations:
            assert record.fetch_seconds == record.simulated_fetch_seconds
            assert record.client_seconds == 0.0


class TestClientSecondsAxis:
    def test_client_seconds_recorded_apart_from_simulated(
            self, researcher_runner, researcher_prepared):
        stepper = _stepper(researcher_runner, researcher_prepared,
                           num_queries=1)
        client = InstantClient(researcher_prepared.engine)
        action = stepper.next_action()
        outcome = client.fetch(action, accounting=stepper.accounting)
        stepper.feed(outcome.results, outcome.pages, client_seconds=0.5)
        action = stepper.next_action()
        outcome = client.fetch(action, accounting=stepper.accounting)
        stepper.feed(outcome.results, outcome.pages, client_seconds=0.25)
        result = stepper.result
        assert result.total_client_seconds() == pytest.approx(0.75)
        assert result.timing.total(CLIENT_TIME) == pytest.approx(0.75)
        record = result.iterations[0]
        assert record.client_seconds == 0.25
        # The paper's simulated axis never absorbs measured latency.
        assert record.simulated_fetch_seconds == \
            len(record.result_page_ids) * \
            researcher_prepared.engine.simulated_fetch_seconds_per_page

    def test_failed_fetch_still_consumes_budget(self, researcher_runner,
                                                researcher_prepared):
        stepper = _stepper(researcher_runner, researcher_prepared,
                           num_queries=1)
        client = InstantClient(researcher_prepared.engine)
        action = stepper.next_action()
        outcome = client.fetch(action, accounting=stepper.accounting)
        stepper.feed(outcome.results, outcome.pages)
        stepper.next_action()
        stepper.feed([], [])  # exhausted fetch: nothing came back
        assert stepper.done
        record = stepper.result.iterations[0]
        assert record.result_page_ids == ()
        assert record.simulated_fetch_seconds == 0.0
