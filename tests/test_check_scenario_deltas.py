"""Tests for the scenario regression gate (hard-fail promotion)."""

import io
import json

from benchmarks.check_scenario_deltas import DEFAULT_THRESHOLD, compare, main


def _report(deltas, schema="BENCH_scenarios/v3", scale="smoke"):
    return {
        "schema": schema,
        "scale": scale,
        "summary": {name: {"mean_f_delta": value}
                    for name, value in deltas.items()},
    }


def _write(tmp_path, name, report):
    path = tmp_path / name
    path.write_text(json.dumps(report), encoding="utf-8")
    return path


class TestCompare:
    def test_no_warning_within_tolerance(self):
        out = io.StringIO()
        warnings = compare(_report({"zipf-skew": -0.02}),
                           _report({"zipf-skew": 0.0}),
                           DEFAULT_THRESHOLD, out=out)
        assert warnings == 0
        assert "ok" in out.getvalue()

    def test_regression_beyond_tolerance_warns(self):
        out = io.StringIO()
        warnings = compare(_report({"zipf-skew": -0.2}),
                           _report({"zipf-skew": 0.0}),
                           DEFAULT_THRESHOLD, out=out)
        assert warnings == 1
        assert "WARN" in out.getvalue()

    def test_improvement_never_warns(self):
        warnings = compare(_report({"zipf-skew": 0.2}),
                           _report({"zipf-skew": 0.0}),
                           DEFAULT_THRESHOLD, out=io.StringIO())
        assert warnings == 0


class TestHardGate:
    def test_regression_fails_the_run(self, tmp_path, capsys):
        fresh = _write(tmp_path, "fresh.json", _report({"zipf-skew": -0.5}))
        baseline = _write(tmp_path, "base.json", _report({"zipf-skew": 0.0}))
        code = main(["--fresh", str(fresh), "--baseline", str(baseline)])
        assert code == 1
        assert "regression gate FAILED" in capsys.readouterr().out

    def test_clean_run_passes(self, tmp_path):
        fresh = _write(tmp_path, "fresh.json", _report({"zipf-skew": 0.0}))
        baseline = _write(tmp_path, "base.json", _report({"zipf-skew": 0.0}))
        assert main(["--fresh", str(fresh), "--baseline", str(baseline)]) == 0

    def test_warn_only_escape_hatch(self, tmp_path):
        fresh = _write(tmp_path, "fresh.json", _report({"zipf-skew": -0.5}))
        baseline = _write(tmp_path, "base.json", _report({"zipf-skew": 0.0}))
        assert main(["--fresh", str(fresh), "--baseline", str(baseline),
                     "--warn-only"]) == 0

    def test_missing_files_pass_softly(self, tmp_path):
        baseline = _write(tmp_path, "base.json", _report({"zipf-skew": 0.0}))
        assert main(["--fresh", str(tmp_path / "absent.json"),
                     "--baseline", str(baseline)]) == 0
        fresh = _write(tmp_path, "fresh.json", _report({"zipf-skew": 0.0}))
        assert main(["--fresh", str(fresh),
                     "--baseline", str(tmp_path / "absent.json")]) == 0

    def test_schema_change_noted_not_fatal(self, tmp_path):
        fresh = _report({"zipf-skew": 0.0}, schema="BENCH_scenarios/v3")
        baseline = _report({"zipf-skew": 0.0}, schema="BENCH_scenarios/v2")
        out = io.StringIO()
        warnings = compare(fresh, baseline, DEFAULT_THRESHOLD, out=out)
        assert warnings == 0
        assert "schema changed" in out.getvalue()
        # And end to end: a schema bump alone must not fail the gate.
        fresh_path = _write(tmp_path, "fresh.json", fresh)
        baseline_path = _write(tmp_path, "base.json", baseline)
        assert main(["--fresh", str(fresh_path),
                     "--baseline", str(baseline_path)]) == 0
