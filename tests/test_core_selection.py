"""Tests for the query-selection strategies."""

import pytest

from repro.core.config import L2QConfig
from repro.core.selection import (
    ContextAwareSelection,
    DomainQuerySelection,
    QuerySelector,
    RandomSelection,
    TemplateSelection,
    UtilityOnlySelection,
    first_unfired,
    make_selector,
    selector_names,
)
from repro.core.session import HarvestSession
from repro.search.engine import SearchEngine
from repro.utils.rng import SeededRandom


@pytest.fixture()
def session(researcher_corpus, researcher_prepared):
    """A harvest session seeded with the entity's seed-query results."""
    split = researcher_prepared.split
    entity_id = split.test_entities[0]
    engine = researcher_prepared.engine
    aspect = "RESEARCH"
    session = HarvestSession(
        corpus=researcher_corpus,
        engine=engine,
        entity=researcher_corpus.get_entity(entity_id),
        aspect=aspect,
        relevance=researcher_prepared.relevance_by_aspect[aspect],
        config=L2QConfig(),
        rng=SeededRandom(3),
        domain_model=researcher_prepared.domain_model(aspect),
    )
    session.add_pages(engine.fetch_pages(engine.seed_results(entity_id)))
    return session


class TestRegistry:
    def test_all_paper_strategies_registered(self):
        assert set(selector_names()) == {
            "RND", "P", "R", "P+q", "R+q", "P+t", "R+t", "L2QP", "L2QR", "L2QBAL"}

    def test_make_selector_returns_fresh_instances(self):
        a = make_selector("L2QP")
        b = make_selector("L2QP")
        assert a is not b
        assert isinstance(a, ContextAwareSelection)

    def test_unknown_selector(self):
        with pytest.raises(KeyError):
            make_selector("UNKNOWN")

    def test_names_match_paper_labels(self):
        assert make_selector("P+t").name == "P+t"
        assert make_selector("L2QBAL").name == "L2QBAL"
        assert make_selector("RND").name == "RND"

    def test_invalid_objectives(self):
        with pytest.raises(ValueError):
            UtilityOnlySelection("f-score")
        with pytest.raises(ValueError):
            DomainQuerySelection("balanced")
        with pytest.raises(ValueError):
            TemplateSelection("other")
        with pytest.raises(ValueError):
            ContextAwareSelection("other")


class TestFirstUnfired:
    def test_skips_fired(self, session):
        session.record_query(("alpha",))
        assert first_unfired([("alpha",), ("beta",)], session) == ("beta",)

    def test_returns_none_when_exhausted(self, session):
        session.record_query(("alpha",))
        assert first_unfired([("alpha",)], session) is None


class TestSelectorsReturnValidQueries:
    @pytest.mark.parametrize("name", ["RND", "P", "R", "P+t", "R+t",
                                      "L2QP", "L2QR", "L2QBAL"])
    def test_returns_unfired_candidate(self, session, name):
        selector = make_selector(name, session.config)
        selector.prepare(session)
        query = selector.select(session)
        assert query is not None
        assert isinstance(query, tuple)
        assert 1 <= len(query) <= session.config.max_query_length
        assert not session.is_fired(query)

    def test_domain_query_selector_uses_domain_ranking(self, session):
        selector = make_selector("P+q", session.config)
        query = selector.select(session)
        assert query in session.domain_model.query_precision

    def test_domain_query_selector_without_domain_returns_none(self, session):
        session.domain_model = None
        selector = make_selector("P+q", session.config)
        assert selector.select(session) is None

    def test_selection_avoids_seed_words(self, session):
        for name in ("P+t", "L2QBAL"):
            selector = make_selector(name, session.config)
            selector.prepare(session)
            query = selector.select(session)
            assert not (set(query) & set(session.entity.seed_query))

    def test_random_selection_deterministic_given_rng(self, researcher_corpus,
                                                      researcher_prepared):
        def fresh_session():
            split = researcher_prepared.split
            entity_id = split.test_entities[0]
            engine = researcher_prepared.engine
            s = HarvestSession(
                corpus=researcher_corpus, engine=engine,
                entity=researcher_corpus.get_entity(entity_id), aspect="RESEARCH",
                relevance=researcher_prepared.relevance_by_aspect["RESEARCH"],
                config=L2QConfig(), rng=SeededRandom(3))
            s.add_pages(engine.fetch_pages(engine.seed_results(entity_id)))
            return s
        q1 = RandomSelection().select(fresh_session())
        q2 = RandomSelection().select(fresh_session())
        assert q1 == q2

    def test_successive_selections_differ(self, session):
        selector = make_selector("L2QBAL", session.config)
        selector.prepare(session)
        first = selector.select(session)
        session.record_query(first)
        second = selector.select(session)
        assert second != first


class TestContextAwareState:
    def test_prepare_resets_tracker(self, session):
        selector = ContextAwareSelection("recall")
        selector.prepare(session)
        assert selector._tracker is not None
        assert len(selector._tracker) == 0

    def test_select_without_prepare_still_works(self, session):
        selector = ContextAwareSelection("precision")
        assert selector.select(session) is not None

    def test_tracker_updated_after_selection(self, session):
        selector = ContextAwareSelection("recall")
        selector.prepare(session)
        selector.select(session)
        assert len(selector._tracker) == 1


class TestQuerySelectorInterface:
    def test_base_class_is_abstract(self):
        with pytest.raises(TypeError):
            QuerySelector()
