"""The search-client adapter layer: token bucket, latency model, retries.

Seeded property tests for the serving satellites: the token-bucket cap
never admits more than the configured QPS over any window, the
retry/backoff schedule is deterministic under a fixed seed, and failed
attempts are charged against the fetch budget through the run accounting.
"""

import math
import random

import pytest

from repro.core.harvester import drive_stepper
from repro.search.clients import (
    CLIENT_INSTANT,
    CLIENT_SIMULATED,
    ClientSpec,
    InstantClient,
    LatencyModel,
    SimulatedServiceClient,
    TokenBucket,
    make_client,
)
from repro.search.engine import RunFetchAccounting

from tests.helpers import harvest_signature

ASPECT = "RESEARCH"


class _Action:
    """A minimal stepper action for direct client tests."""

    def __init__(self, entity_id, key, query=None):
        self.entity_id = entity_id
        self.request_key = key
        if query is not None:
            self.query = query


class TestTokenBucket:
    @pytest.mark.parametrize("rate,capacity,requests", [
        (10.0, 1.0, 200),
        (50.0, 5.0, 300),
        (3.0, None, 100),
    ])
    def test_admissions_never_exceed_rate_over_any_window(self, rate,
                                                          capacity, requests):
        bucket = TokenBucket(rate, capacity)
        capacity = bucket.capacity
        rng = random.Random(7)
        admissions = []
        now = 0.0
        for _ in range(requests):
            now += rng.expovariate(2.0 * rate)  # arrivals faster than rate
            wait = bucket.reserve(now)
            assert wait >= 0.0
            admissions.append(max(now, bucket.clock))
        assert admissions == sorted(admissions)
        # Over any admission-to-admission window the bucket admitted at
        # most capacity + rate * window requests (the defining invariant).
        for i in range(len(admissions)):
            for j in range(i, len(admissions), 7):
                window = admissions[j] - admissions[i]
                admitted = j - i + 1
                assert admitted <= capacity + rate * window + 1e-6

    def test_burst_up_to_capacity_is_free(self):
        bucket = TokenBucket(rate=10.0, capacity=5.0)
        assert [bucket.reserve() for _ in range(5)] == [0.0] * 5
        assert bucket.reserve() > 0.0

    def test_wait_sequence_is_a_pure_function_of_request_count(self):
        first = TokenBucket(rate=4.0, capacity=2.0)
        second = TokenBucket(rate=4.0, capacity=2.0)
        waits = [first.reserve() for _ in range(20)]
        assert waits == [second.reserve() for _ in range(20)]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(10.0, capacity=0.5)


class TestLatencyModel:
    def test_percentiles_parametrise_the_lognormal(self):
        model = LatencyModel(p50=0.025, p99=0.1)
        z99 = 2.3263478740408408
        assert math.exp(model.mu) == pytest.approx(0.025)
        assert math.exp(model.mu + model.sigma * z99) == pytest.approx(0.1)

    def test_rejects_inverted_percentiles(self):
        with pytest.raises(ValueError):
            LatencyModel(p50=0.1, p99=0.05)
        with pytest.raises(ValueError):
            LatencyModel(p50=0.0, p99=0.1)


class TestClientSpec:
    def test_validates_rates_and_retries(self):
        with pytest.raises(ValueError):
            ClientSpec(timeout_rate=1.2)
        with pytest.raises(ValueError):
            ClientSpec(timeout_rate=0.6, failure_rate=0.5)
        with pytest.raises(ValueError):
            ClientSpec(max_retries=-1)
        with pytest.raises(ValueError):
            ClientSpec(kind="imaginary")

    def test_as_dict_round_trips(self):
        spec = ClientSpec(kind=CLIENT_SIMULATED, seed=23, latency_p50=0.01,
                          latency_p99=0.05)
        assert ClientSpec(**spec.as_dict()) == spec


class TestMakeClient:
    def test_coercions(self, researcher_prepared):
        engine = researcher_prepared.engine
        assert isinstance(make_client(None, engine), InstantClient)
        assert isinstance(make_client(CLIENT_INSTANT, engine), InstantClient)
        assert isinstance(make_client(CLIENT_SIMULATED, engine),
                          SimulatedServiceClient)
        assert isinstance(make_client(ClientSpec(), engine), InstantClient)
        simulated = make_client(ClientSpec(kind=CLIENT_SIMULATED), engine)
        assert isinstance(simulated, SimulatedServiceClient)
        assert make_client(simulated, engine) is simulated
        with pytest.raises(TypeError):
            make_client(3.14, engine)


class TestSimulatedServiceClient:
    SPEC = ClientSpec(kind=CLIENT_SIMULATED, seed=17)

    def test_outcomes_deterministic_under_a_fixed_seed(self,
                                                       researcher_prepared):
        entity_id = list(researcher_prepared.split.test_entities)[0]
        action = _Action(entity_id, (entity_id, ASPECT, "RND", "seed"))

        def outcome():
            client = SimulatedServiceClient(researcher_prepared.engine,
                                            self.SPEC)
            return client.fetch(action, accounting=RunFetchAccounting())

        first, second = outcome(), outcome()
        assert first.latency_seconds == second.latency_seconds
        assert first.attempts == second.attempts
        assert first.retries == second.retries
        assert first.timeouts == second.timeouts
        assert [r.page_id for r in first.results] == \
            [r.page_id for r in second.results]

    def test_draws_keyed_by_request_not_by_call_order(self,
                                                      researcher_prepared):
        entity_id = list(researcher_prepared.split.test_entities)[0]
        key_a = (entity_id, ASPECT, "RND", "seed")
        key_b = (entity_id, ASPECT, "MQ", "seed")
        solo = SimulatedServiceClient(researcher_prepared.engine, self.SPEC)
        alone = solo.fetch(_Action(entity_id, key_b),
                           accounting=RunFetchAccounting())
        shared = SimulatedServiceClient(researcher_prepared.engine, self.SPEC)
        shared.fetch(_Action(entity_id, key_a),
                     accounting=RunFetchAccounting())
        interleaved = shared.fetch(_Action(entity_id, key_b),
                                   accounting=RunFetchAccounting())
        assert interleaved.latency_seconds == alone.latency_seconds
        assert interleaved.attempts == alone.attempts

    def test_backoff_schedule_is_deterministic_and_exponential(self):
        spec = ClientSpec(kind=CLIENT_SIMULATED, backoff_base=0.05,
                          backoff_multiplier=2.0, max_retries=3)
        delays = [spec.backoff_base * spec.backoff_multiplier ** attempt
                  for attempt in range(spec.max_retries)]
        assert delays == [0.05, 0.1, 0.2]

    def test_failed_attempts_charge_the_fetch_budget(self,
                                                     researcher_runner,
                                                     researcher_prepared):
        # A flaky service: at these rates a multi-request session is all
        # but guaranteed retries — and with a fixed seed, deterministically
        # so (the assertion would fail loudly if the seed produced none).
        spec = ClientSpec(kind=CLIENT_SIMULATED, timeout_rate=0.3,
                          failure_rate=0.3, max_retries=4, seed=17)
        client = SimulatedServiceClient(researcher_prepared.engine, spec)
        harvester = researcher_runner.harvester_for(researcher_prepared)
        entity_id = list(researcher_prepared.split.test_entities)[0]
        job = researcher_runner.build_job(researcher_prepared, "RND",
                                          entity_id, ASPECT, 3)
        result = drive_stepper(harvester.stepper_for_job(job), client)
        stats = client.stats
        assert stats.retry_queries > 0
        # Every fired query is either engine-served or a charged retry.
        assert result.fetch_accounting.queries_fired == \
            stats.engine_queries + stats.retry_queries
        assert stats.attempts == stats.engine_queries + stats.retry_queries

    def test_exhausted_request_returns_empty_outcome(self,
                                                     researcher_prepared):
        # Nearly-always-failing service with one attempt: scan seeds until
        # the single verdict draw fails — deterministic once found.
        entity_id = list(researcher_prepared.split.test_entities)[0]
        action = _Action(entity_id, (entity_id, ASPECT, "RND", "seed"))
        for seed in range(64):
            spec = ClientSpec(kind=CLIENT_SIMULATED, timeout_rate=0.5,
                              failure_rate=0.49, max_retries=0, seed=seed)
            client = SimulatedServiceClient(researcher_prepared.engine, spec)
            accounting = RunFetchAccounting()
            outcome = client.fetch(action, accounting=accounting)
            if outcome.exhausted:
                assert outcome.results == ()
                assert outcome.pages == ()
                assert outcome.attempts == 1
                assert accounting.queries_fired == 1
                assert accounting.pages_fetched == 0
                return
        pytest.fail("no failing seed found at 99% failure rate")

    def test_instant_client_keeps_historical_signatures(self,
                                                        researcher_runner,
                                                        researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        entity_id = list(researcher_prepared.split.test_entities)[0]

        def job():
            return researcher_runner.build_job(researcher_prepared, "L2QBAL",
                                               entity_id, ASPECT, 2)

        direct = harvester.harvest_job(job())
        via_client = harvester.harvest_job(
            job(), client=InstantClient(researcher_prepared.engine))
        assert harvest_signature(via_client) == harvest_signature(direct)
