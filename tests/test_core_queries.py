"""Tests for candidate query enumeration."""

import pytest

from tests.helpers import make_page

from repro.core.queries import (
    QueryEnumerator,
    format_query,
    prune_queries,
    query_contained_in_page,
)


class TestFormatQuery:
    def test_joins_and_unescapes(self):
        assert format_query(("data_mining", "tkde")) == "data mining tkde"


class TestWordFiltering:
    def test_stopwords_excluded(self):
        enumerator = QueryEnumerator()
        assert not enumerator.is_usable_word("the")
        assert enumerator.is_usable_word("parallel")

    def test_short_words_excluded(self):
        enumerator = QueryEnumerator(min_word_length=3)
        assert not enumerator.is_usable_word("ab")

    def test_seed_words_excluded(self):
        enumerator = QueryEnumerator(exclude_words={"snir"})
        assert not enumerator.is_usable_word("snir")

    def test_invalid_max_length(self):
        with pytest.raises(ValueError):
            QueryEnumerator(max_length=0)


class TestSlidingWindow:
    def test_all_lengths_up_to_max(self):
        enumerator = QueryEnumerator(max_length=3)
        counts = enumerator.enumerate_from_tokens(["parallel", "hpc", "research"])
        assert ("parallel",) in counts
        assert ("parallel", "hpc") in counts
        assert ("parallel", "hpc", "research") in counts
        assert ("hpc", "research") in counts

    def test_max_length_respected(self):
        enumerator = QueryEnumerator(max_length=2)
        counts = enumerator.enumerate_from_tokens(["a1", "b2", "c3", "d4"])
        assert all(len(query) <= 2 for query in counts)

    def test_stopwords_removed_before_windowing(self):
        enumerator = QueryEnumerator(max_length=2)
        counts = enumerator.enumerate_from_tokens(["parallel", "and", "hpc"])
        # "and" is removed, so "parallel hpc" becomes a contiguous window.
        assert ("parallel", "hpc") in counts

    def test_repeated_word_windows_skipped(self):
        enumerator = QueryEnumerator(max_length=2)
        counts = enumerator.enumerate_from_tokens(["hpc", "hpc"])
        assert ("hpc", "hpc") not in counts
        assert counts[("hpc",)] == 2

    def test_short_sequence(self):
        enumerator = QueryEnumerator(max_length=3)
        assert enumerator.enumerate_from_tokens([]) == {}


class TestPageEnumeration:
    def test_windows_do_not_cross_paragraphs(self):
        enumerator = QueryEnumerator(max_length=2)
        page = make_page("p1", "e1", [(["alpha", "beta"], None), (["gamma"], None)])
        counts = enumerator.enumerate_from_page(page)
        assert ("beta", "gamma") not in counts
        assert ("alpha", "beta") in counts

    def test_statistics_track_pages_and_entities(self):
        enumerator = QueryEnumerator(max_length=1)
        pages = [
            make_page("p1", "e1", [(["shared", "unique1"], None)]),
            make_page("p2", "e2", [(["shared", "unique2"], None)]),
        ]
        stats = enumerator.enumerate_from_pages(pages)
        assert stats.page_frequency(("shared",)) == 2
        assert stats.entity_support(("shared",)) == 2
        assert stats.entity_support(("unique1",)) == 1

    def test_merge_statistics(self):
        enumerator = QueryEnumerator(max_length=1)
        a = enumerator.enumerate_from_pages([make_page("p1", "e1", [(["x1"], None)])])
        b = enumerator.enumerate_from_pages([make_page("p2", "e2", [(["x1"], None)])])
        a.merge(b)
        assert a.page_frequency(("x1",)) == 2
        assert a.entity_support(("x1",)) == 2


class TestContainment:
    def test_query_contained_in_page(self):
        page = make_page("p1", "e1", [(["parallel", "hpc"], None)])
        assert query_contained_in_page(("parallel",), page)
        assert query_contained_in_page(("hpc", "parallel"), page)
        assert not query_contained_in_page(("parallel", "missing"), page)


class TestPruning:
    def test_prune_by_page_frequency_and_cap(self):
        enumerator = QueryEnumerator(max_length=1)
        pages = [
            make_page("p1", "e1", [(["common", "rare1"], None)]),
            make_page("p2", "e1", [(["common", "rare2"], None)]),
        ]
        stats = enumerator.enumerate_from_pages(pages)
        frequent = prune_queries(stats, min_page_frequency=2)
        assert frequent == [("common",)]
        capped = prune_queries(stats, min_page_frequency=1, max_queries=1)
        assert capped == [("common",)]
