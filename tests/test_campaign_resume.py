"""Kill-and-resume equivalence, proven with a real SIGKILL.

A campaign subprocess is started with the inter-cell sleep hook enabled,
SIGKILLed as soon as its journal holds at least one committed cell, and
then resumed.  The resumed directory must (a) skip every journalled cell
instead of re-executing it and (b) fold matrices byte-identical to an
uninterrupted control run — the two halves of the checkpoint/resume
contract.  ``atexit``/``finally`` never run under SIGKILL, so this
exercises the true crash path, not a polite shutdown.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.campaign import (
    INTERCELL_SLEEP_ENV,
    JOURNAL_NAME,
    MATRICES_NAME,
    CampaignRunner,
    CampaignSpec,
)
from repro.eval.experiments import ExperimentScale

REPO = Path(__file__).resolve().parents[1]

TINY_SCALE = ExperimentScale(
    name="tiny",
    num_entities={"researcher": 12, "car": 10},
    pages_per_entity=8,
    num_splits=1,
    max_test_entities=2,
    max_aspects=2,
    num_queries_list=(2,),
    corpus_seed=11,
)


def tiny_spec():
    return CampaignSpec(name="killtest", scale=TINY_SCALE, domains=("car",),
                        scenarios=("zipf-skew",), methods=("MQ", "RND"),
                        seeds=(11,), num_queries=2)


def _campaign_cli(campdir, spec_path, *, intercell_sleep=None):
    """Launch `campaign run` as a real subprocess (the kill target)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    if intercell_sleep is not None:
        env[INTERCELL_SLEEP_ENV] = str(intercell_sleep)
    cmd = [sys.executable, "-m", "repro.cli", "campaign", "run",
           "--dir", str(campdir), "--spec", str(spec_path),
           "--checkpoint-every", "1"]
    return subprocess.Popen(cmd, env=env, cwd=str(REPO), text=True,
                            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


def _wait_for_committed_cell(journal: Path, timeout: float = 180.0) -> None:
    """Block until the journal holds >= 1 fully committed line."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists():
            data = journal.read_bytes()
            if data.strip() and data.endswith(b"\n"):
                return
        time.sleep(0.05)
    raise AssertionError("no cell was journalled before the timeout")


def test_sigkill_mid_campaign_then_resume_is_byte_identical(tmp_path):
    spec = tiny_spec()
    spec_path = spec.save(tmp_path / "spec.json")

    # Uninterrupted control run (in-process; same deterministic code path).
    control = CampaignRunner(tmp_path / "control", spec=spec)
    control_report = control.run()
    assert control_report.complete

    # Victim run: one-cell checkpoints, a long post-commit sleep as the
    # kill window.  SIGKILL lands while the first cell is committed and
    # the second has not started.
    victim_dir = tmp_path / "victim"
    proc = _campaign_cli(victim_dir, spec_path, intercell_sleep=60)
    try:
        _wait_for_committed_cell(victim_dir / JOURNAL_NAME)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait()
    assert proc.returncode == -signal.SIGKILL
    # The kill interrupted real work: journal exists, matrices do not.
    assert (victim_dir / JOURNAL_NAME).exists()
    assert not (victim_dir / MATRICES_NAME).exists()

    # Resume: a fresh subprocess against the same directory, no spec
    # needed (the directory is bound) and no sleep hook.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    env.pop(INTERCELL_SLEEP_ENV, None)
    resume = subprocess.run(
        [sys.executable, "-m", "repro.cli", "campaign", "resume",
         "--dir", str(victim_dir)],
        env=env, cwd=str(REPO), text=True, capture_output=True, timeout=600)
    assert resume.returncode == 0, resume.stdout + resume.stderr

    # (a) journalled cells were skipped, not re-executed.
    match = re.search(r"(\d+) skipped \(journalled\), (\d+) executed",
                      resume.stdout)
    assert match, resume.stdout
    skipped, executed = int(match.group(1)), int(match.group(2))
    assert skipped >= 1
    assert skipped + executed == control_report.total

    # (b) resumed output is byte-identical to the uninterrupted run.
    victim_bytes = (victim_dir / MATRICES_NAME).read_bytes()
    control_bytes = control_report.matrices_path.read_bytes()
    assert victim_bytes == control_bytes

    # And the resumed journal commits every cell exactly once on top of
    # the pre-kill prefix.
    lines = [json.loads(line) for line in
             (victim_dir / JOURNAL_NAME).read_text().splitlines()]
    keys = [entry["key"] for entry in lines]
    assert len(keys) == len(set(keys)) == control_report.total
