"""Regression tests for the single ``Entity.excluded_words`` definition.

``DomainQuerySelection``, ``HarvestSession`` and ``EntityPhase`` used to
each rebuild ``set(seed_query) | set(name_tokens)`` locally; four copies of
one definition is how exclusion sets drift apart.  These tests pin both the
helper's semantics and the absence of re-derivations in the source tree.
"""

import re
from pathlib import Path

import repro
from repro.aspects.relevance import AllRelevant
from repro.core.config import L2QConfig
from repro.core.entity_phase import EntityPhase
from repro.core.session import HarvestSession
from repro.corpus.document import Entity
from repro.search.engine import SearchEngine
from repro.utils.rng import SeededRandom


def _entity():
    return Entity(entity_id="e1", domain="researcher",
                  name_tokens=("marc", "snir"),
                  seed_query=("marc", "snir", "uiuc"))


class TestExcludedWords:
    def test_union_of_seed_query_and_name_tokens(self):
        assert _entity().excluded_words() == frozenset(
            {"marc", "snir", "uiuc"})

    def test_disjoint_components_both_covered(self):
        entity = Entity(entity_id="e2", domain="car",
                        name_tokens=("focus",),
                        seed_query=("ford", "2014"))
        assert entity.excluded_words() == frozenset({"focus", "ford", "2014"})

    def test_no_call_site_rebuilds_the_union(self):
        # The historical pattern `set(<x>.seed_query) | set(<x>.name_tokens)`
        # must not reappear anywhere in the package: every consumer goes
        # through Entity.excluded_words() so the definitions cannot drift.
        package_root = Path(repro.__file__).parent
        pattern = re.compile(r"seed_query\s*\)\s*\|\s*(?:frozen)?set\s*\(")
        offenders = [
            str(path.relative_to(package_root))
            for path in sorted(package_root.rglob("*.py"))
            if path.name != "document.py" and pattern.search(path.read_text())
        ]
        assert offenders == []

    def test_session_enumerator_uses_the_helper(self, researcher_corpus):
        entity_id = researcher_corpus.entity_ids()[0]
        entity = researcher_corpus.get_entity(entity_id)
        session = HarvestSession(
            corpus=researcher_corpus,
            engine=SearchEngine(researcher_corpus, top_k=5),
            entity=entity,
            aspect="RESEARCH",
            relevance=AllRelevant(),
            config=L2QConfig(),
            rng=SeededRandom(3),
        )
        assert session.candidates.enumerator.exclude_words == \
            entity.excluded_words()

    def test_entity_phase_enumeration_agrees_with_session(self,
                                                          researcher_corpus):
        # From-scratch enumeration (EntityPhase builds its own enumerator)
        # and the session's incremental pool must exclude the same words:
        # the same pages yield the same candidate set either way.
        entity_id = researcher_corpus.entity_ids()[0]
        entity = researcher_corpus.get_entity(entity_id)
        pages = researcher_corpus.pages_of(entity_id)[:4]
        session = HarvestSession(
            corpus=researcher_corpus,
            engine=SearchEngine(researcher_corpus, top_k=5),
            entity=entity,
            aspect="RESEARCH",
            relevance=AllRelevant(),
            config=L2QConfig(),
            rng=SeededRandom(3),
            current_pages=list(pages),
        )
        phase = EntityPhase(researcher_corpus.type_system, L2QConfig())
        from_scratch = phase.enumerate_candidates(entity, pages)
        incremental = phase.enumerate_candidates(
            entity, pages, statistics=session.candidates.statistics,
            observed_words=session.candidates.observed_words)
        assert from_scratch == incremental
