"""Tests for the search engine's LRU result cache and its accounting."""

import pytest

from repro.search.engine import SearchEngine


@pytest.fixture()
def engine(researcher_corpus):
    return SearchEngine(researcher_corpus, top_k=5)


@pytest.fixture()
def entity_id(researcher_corpus):
    return researcher_corpus.entity_ids()[0]


class TestCacheAccounting:
    def test_first_query_misses_then_hits(self, engine, entity_id):
        first = engine.search(entity_id, ["research"])
        stats = engine.fetch_statistics
        assert (stats.cache_hits, stats.cache_misses) == (0, 1)
        second = engine.search(entity_id, ["research"])
        stats = engine.fetch_statistics
        assert (stats.cache_hits, stats.cache_misses) == (1, 1)
        assert second == first

    def test_distinct_keys_do_not_collide(self, engine, entity_id, researcher_corpus):
        engine.search(entity_id, ["research"])
        engine.search(entity_id, ["research"], top_k=2)       # different k
        engine.search(entity_id, ["parallel"])                # different query
        other = researcher_corpus.entity_ids()[1]
        engine.search(other, ["research"])                    # different entity
        stats = engine.fetch_statistics
        assert stats.cache_hits == 0
        assert stats.cache_misses == 4

    def test_hit_rate(self, engine, entity_id):
        assert engine.fetch_statistics.cache_hit_rate == 0.0
        engine.search(entity_id, ["research"])
        engine.search(entity_id, ["research"])
        engine.search(entity_id, ["research"])
        assert engine.fetch_statistics.cache_hit_rate == pytest.approx(2 / 3)

    def test_fetch_accounting_still_charged_on_hits(self, engine, entity_id):
        first = engine.search(entity_id, ["research"])
        engine.search(entity_id, ["research"])
        stats = engine.fetch_statistics
        # The cache saves ranking CPU, not the (simulated) fetch cost: both
        # queries count as fired and both download their result pages.
        assert stats.queries_fired == 2
        assert stats.pages_fetched == 2 * len(first)

    def test_uncounted_lookups_also_cached(self, engine, entity_id):
        engine.retrievable_pages(entity_id, ["research"])
        engine.retrievable_pages(entity_id, ["research"])
        stats = engine.fetch_statistics
        assert stats.queries_fired == 0
        assert (stats.cache_hits, stats.cache_misses) == (1, 1)


class TestCacheBehaviour:
    def test_lru_eviction(self, researcher_corpus):
        engine = SearchEngine(researcher_corpus, result_cache_size=2)
        entity_id = researcher_corpus.entity_ids()[0]
        engine.search(entity_id, ["research"])    # miss: {research}
        engine.search(entity_id, ["parallel"])    # miss: {research, parallel}
        engine.search(entity_id, ["award"])       # miss, evicts research
        engine.search(entity_id, ["research"])    # miss again after eviction
        stats = engine.fetch_statistics
        assert stats.cache_hits == 0
        assert stats.cache_misses == 4

    def test_cache_disabled(self, researcher_corpus):
        engine = SearchEngine(researcher_corpus, result_cache_size=0)
        entity_id = researcher_corpus.entity_ids()[0]
        first = engine.search(entity_id, ["research"])
        second = engine.search(entity_id, ["research"])
        stats = engine.fetch_statistics
        assert (stats.cache_hits, stats.cache_misses) == (0, 0)
        assert second == first

    def test_negative_capacity_rejected(self, researcher_corpus):
        with pytest.raises(ValueError):
            SearchEngine(researcher_corpus, result_cache_size=-1)

    def test_reset_statistics_clears_counters(self, engine, entity_id):
        engine.search(entity_id, ["research"])
        engine.search(entity_id, ["research"])
        engine.reset_statistics()
        stats = engine.fetch_statistics
        assert (stats.cache_hits, stats.cache_misses) == (0, 0)
