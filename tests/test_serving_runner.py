"""The async serving runner: determinism under concurrency, metrics split."""

import pytest

from repro.exec.backends import make_backend, resolve_backend
from repro.search.clients import CLIENT_SIMULATED, ClientSpec
from repro.serving import (
    ServingBackend,
    ServingRunner,
    harvest_serially,
    percentile,
    serve_jobs,
)

from tests.helpers import harvest_signature

ASPECT = "RESEARCH"
#: Fast simulated service for tests; time_scale=0 keeps the event loop
#: from actually sleeping (metrics are computed from simulated clocks).
SPEC = ClientSpec(kind=CLIENT_SIMULATED, seed=17)


def _jobs(runner, prepared, methods=("RND", "MQ"), num_queries=2):
    entities = list(prepared.split.test_entities)[:2]
    return [runner.build_job(prepared, method, entity_id, ASPECT, num_queries)
            for method in methods
            for entity_id in entities]


class TestInstantServing:
    def test_matches_serial_bit_for_bit(self, researcher_runner,
                                        researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        serial = harvester.harvest_many(
            _jobs(researcher_runner, researcher_prepared), backend="serial")
        report = ServingRunner(harvester, concurrency=4).run(
            _jobs(researcher_runner, researcher_prepared))
        assert [harvest_signature(r) for r in report.results] == \
            [harvest_signature(r) for r in serial]
        assert report.metrics()["session_latency_total"] == 0.0

    def test_registered_backend_routes_through_the_runner(
            self, researcher_runner, researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        serial = harvester.harvest_many(
            _jobs(researcher_runner, researcher_prepared), backend="serial")
        served = harvester.harvest_many(
            _jobs(researcher_runner, researcher_prepared), backend="serving")
        assert [harvest_signature(r) for r in served] == \
            [harvest_signature(r) for r in serial]


class TestSimulatedServing:
    def _report(self, runner, prepared, concurrency):
        harvester = runner.harvester_for(prepared)
        serving = ServingRunner(harvester, client=SPEC,
                                concurrency=concurrency, time_scale=0.0)
        return serving.run(_jobs(runner, prepared))

    def test_two_concurrent_runs_identical(self, researcher_runner,
                                           researcher_prepared):
        first = self._report(researcher_runner, researcher_prepared, 8)
        second = self._report(researcher_runner, researcher_prepared, 8)
        assert [harvest_signature(r) for r in first.results] == \
            [harvest_signature(r) for r in second.results]
        assert first.metrics() == second.metrics()
        assert first.client_stats == second.client_stats

    def test_metrics_independent_of_concurrency(self, researcher_runner,
                                                researcher_prepared):
        lone = self._report(researcher_runner, researcher_prepared, 1)
        packed = self._report(researcher_runner, researcher_prepared, 8)
        assert lone.metrics() == packed.metrics()
        assert [harvest_signature(r) for r in lone.results] == \
            [harvest_signature(r) for r in packed.results]

    def test_concurrent_runner_matches_serial_driver(self, researcher_runner,
                                                     researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        report = self._report(researcher_runner, researcher_prepared, 8)
        serial = harvest_serially(
            harvester, _jobs(researcher_runner, researcher_prepared),
            client=SPEC)
        assert [harvest_signature(r) for r in report.results] == \
            [harvest_signature(r) for r in serial]

    def test_retries_charged_to_the_merged_accounting(self, researcher_runner,
                                                      researcher_prepared):
        report = self._report(researcher_runner, researcher_prepared, 8)
        metrics = report.metrics()
        stats = report.client_stats
        assert metrics["queries_fired"] == \
            stats["engine_queries"] + stats["retry_queries"]
        assert metrics["retries"] == stats["retries"]

    def test_wall_clock_block_kept_apart_from_metrics(self, researcher_runner,
                                                      researcher_prepared):
        report = self._report(researcher_runner, researcher_prepared, 4)
        rendered = report.as_dict()
        assert set(rendered["wall_clock"]) == {
            "wall_seconds", "sessions_per_second", "throttle_seconds"}
        for key in rendered["wall_clock"]:
            assert key not in rendered["metrics"]
        assert rendered["metrics"]["session_latency_total"] > 0.0


class TestServeJobsAndBackend:
    def test_serve_jobs_one_shot(self, researcher_runner,
                                 researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        report = serve_jobs(harvester,
                            _jobs(researcher_runner, researcher_prepared),
                            concurrency=2)
        assert len(report.results) == 4

    def test_backend_resolves_through_the_registry(self):
        backend = make_backend("serving", workers=3)
        assert isinstance(backend, ServingBackend)
        assert backend.workers == 3
        assert not backend.distributed
        assert resolve_backend("serving", workers=2).workers == 2

    def test_backend_accepts_client_parameter(self):
        backend = make_backend("serving", workers=2, client=SPEC,
                               time_scale=0.0)
        assert backend.client == SPEC

    def test_non_harvest_payloads_fall_back_to_a_plain_loop(self):
        backend = ServingBackend(workers=2)
        assert backend.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        assert backend.last_report is None

    def test_empty_job_batch(self, researcher_runner, researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        assert ServingRunner(harvester).run([]).results == []

    def test_rejects_bad_parameters(self, researcher_runner,
                                    researcher_prepared):
        harvester = researcher_runner.harvester_for(researcher_prepared)
        with pytest.raises(ValueError):
            ServingRunner(harvester, concurrency=0)
        with pytest.raises(ValueError):
            ServingRunner(harvester, time_scale=-1.0)
        with pytest.raises(ValueError):
            ServingBackend(workers=0)


class TestPercentile:
    def test_interpolates_linearly(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)

    def test_edge_cases(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
