"""Batched aspect-classifier kernels vs their scalar oracles, property-tested.

The vectorized Naive Bayes stack promises *bit-identical* results to the
scalar dict-loop reference it replaced: ``fit_matrix`` vs ``fit``,
``joint_log_likelihood_matrix`` vs ``joint_log_likelihood``,
``predict_many``/``predict_proba_many`` vs per-document ``predict``/
``predict_proba``, and the suite's one-pass ``page_assessment`` vs
``(classify_page, page_probability)``.  These tests pin that contract over
seeded random corpora — including the edge cases where a vectorized path
most easily drifts: unseen terms, empty documents, single-class training
sets and exact score ties.
"""

import random

import numpy as np
import pytest

from repro.aspects.classifier import AspectClassifierSuite
from repro.aspects.features import BagOfWordsExtractor, FeatureMatrix
from repro.aspects.naive_bayes import MultinomialNaiveBayes

VOCABULARY = [f"w{i}" for i in range(25)]
SEEDS = [0, 1, 2, 3, 4]


def _random_documents(rng: random.Random, num_docs: int,
                      vocabulary=VOCABULARY, allow_empty: bool = True) -> list:
    documents = []
    for _ in range(num_docs):
        length = rng.randint(0 if allow_empty else 1, 12)
        counts = {}
        for _ in range(length):
            term = rng.choice(vocabulary)
            counts[term] = counts.get(term, 0) + 1
        documents.append(counts)
    return documents


def _random_training_set(rng: random.Random, num_docs: int = 40):
    documents = _random_documents(rng, num_docs)
    labels = [rng.choice([0, 1, 2]) for _ in documents]
    return documents, labels


class TestFitMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fit_matrix_bitwise_equal_to_fit(self, seed):
        rng = random.Random(seed)
        documents, labels = _random_training_set(rng)
        scalar = MultinomialNaiveBayes(alpha=0.5).fit(documents, labels)
        batched = MultinomialNaiveBayes(alpha=0.5).fit_matrix(
            FeatureMatrix.from_dicts(documents), labels)
        assert batched._classes == scalar._classes
        assert batched._terms == scalar._terms
        assert batched._vocabulary_size == scalar._vocabulary_size
        assert batched._prior_array.tobytes() == scalar._prior_array.tobytes()
        assert batched._log_prob_table.tobytes() == \
            scalar._log_prob_table.tobytes()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lazy_scalar_state_matches_fit(self, seed):
        rng = random.Random(seed)
        documents, labels = _random_training_set(rng)
        scalar = MultinomialNaiveBayes().fit(documents, labels)
        batched = MultinomialNaiveBayes().fit_matrix(
            FeatureMatrix.from_dicts(documents), labels)
        probe = documents[0]
        assert batched.joint_log_likelihood(probe) == \
            scalar.joint_log_likelihood(probe)
        # The lazy rebuild materialises zero-count terms explicitly (at the
        # default value), so compare per-term lookups, not dict keys.
        assert batched._default_log_prob == scalar._default_log_prob
        for label in scalar.classes:
            batched_terms = batched._feature_log_prob[label]
            scalar_terms = scalar._feature_log_prob[label]
            default = scalar._default_log_prob[label]
            for term in batched._terms:
                assert batched_terms.get(term, default) == \
                    scalar_terms.get(term, default)

    def test_unused_extractor_columns_never_enter_the_model(self):
        # The matrix carries the extractor's full vocabulary; documents use
        # only part of it.  The scalar path's vocabulary is the used part.
        documents = [{"a": 1}, {"b": 2}]
        matrix = FeatureMatrix.from_dicts(documents, terms=["a", "b", "c", "d"])
        batched = MultinomialNaiveBayes().fit_matrix(matrix, [0, 1])
        scalar = MultinomialNaiveBayes().fit(documents, [0, 1])
        assert batched._terms == scalar._terms == ("a", "b")
        assert batched._vocabulary_size == scalar._vocabulary_size == 2
        assert batched._log_prob_table.tobytes() == \
            scalar._log_prob_table.tobytes()

    def test_negative_counts_rejected(self):
        matrix = FeatureMatrix.from_dicts([{"a": -1}])
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit_matrix(matrix, [0])

    def test_length_mismatch_and_empty_rejected(self):
        matrix = FeatureMatrix.from_dicts([{"a": 1}])
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit_matrix(matrix, [0, 1])
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit_matrix(
                FeatureMatrix.from_dicts([]), [])


class TestBatchedInference:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_joint_log_likelihood_matrix_bitwise(self, seed):
        rng = random.Random(seed)
        documents, labels = _random_training_set(rng)
        model = MultinomialNaiveBayes().fit(documents, labels)
        # Evaluation documents draw from a wider vocabulary, so some terms
        # are unseen and must hit the default column.
        evaluation = _random_documents(
            rng, 25, vocabulary=VOCABULARY + ["u1", "u2", "u3"])
        matrix = FeatureMatrix.from_dicts(evaluation)
        scores = model.joint_log_likelihood_matrix(matrix)
        assert scores.shape == (len(evaluation), len(model.classes))
        for i, features in enumerate(evaluation):
            scalar = model.joint_log_likelihood(features)
            for c, label in enumerate(model.classes):
                assert scores[i, c] == scalar[label]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_predict_many_matches_scalar_predict(self, seed):
        rng = random.Random(seed)
        documents, labels = _random_training_set(rng)
        model = MultinomialNaiveBayes().fit(documents, labels)
        evaluation = _random_documents(
            rng, 25, vocabulary=VOCABULARY + ["unseen"])
        matrix = FeatureMatrix.from_dicts(evaluation)
        assert model.predict_many(matrix) == \
            [model.predict(features) for features in evaluation]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_predict_proba_many_bitwise(self, seed):
        rng = random.Random(seed)
        documents, labels = _random_training_set(rng)
        model = MultinomialNaiveBayes().fit(documents, labels)
        evaluation = _random_documents(
            rng, 25, vocabulary=VOCABULARY + ["unseen"])
        matrix = FeatureMatrix.from_dicts(evaluation)
        probabilities = model.predict_proba_many(matrix)
        for i, features in enumerate(evaluation):
            scalar = model.predict_proba(features)
            for c, label in enumerate(model.classes):
                assert probabilities[i, c] == scalar[label]

    def test_empty_document_scores_are_the_priors(self):
        model = MultinomialNaiveBayes().fit([{"a": 1}, {"b": 1}], [0, 1])
        matrix = FeatureMatrix.from_dicts([{}])
        scores = model.joint_log_likelihood_matrix(matrix)
        scalar = model.joint_log_likelihood({})
        assert [scores[0, c] for c in range(2)] == \
            [scalar[label] for label in model.classes]

    def test_empty_batch_returns_empty(self):
        model = MultinomialNaiveBayes().fit([{"a": 1}, {"b": 1}], [0, 1])
        matrix = FeatureMatrix.from_dicts([])
        assert model.predict_many(matrix) == []
        assert model.predict_proba_many(matrix).shape == (0, 2)

    def test_single_class_training_set(self):
        documents = [{"a": 2}, {"a": 1, "b": 1}]
        model = MultinomialNaiveBayes().fit_matrix(
            FeatureMatrix.from_dicts(documents), [1, 1])
        matrix = FeatureMatrix.from_dicts([{"a": 1}, {}, {"c": 3}])
        assert model.predict_many(matrix) == [1, 1, 1]
        assert np.all(model.predict_proba_many(matrix) == 1.0)

    def test_exact_tie_breaks_like_the_scalar_reference(self):
        # Identical per-class training data makes every score an exact tie;
        # the winner must be the first label in str-sorted order (here 10,
        # because "10" < "9"), on both paths.
        documents = [{"a": 1}, {"a": 1}]
        labels = [9, 10]
        scalar = MultinomialNaiveBayes().fit(documents, labels)
        matrix = FeatureMatrix.from_dicts([{"a": 2}, {}])
        assert scalar.predict({"a": 2}) == 10
        assert scalar.predict_many(matrix) == [10, 10]

    def test_predict_many_falls_back_to_scalar_for_plain_lists(self):
        documents, labels = _random_training_set(random.Random(7))
        model = MultinomialNaiveBayes().fit(documents, labels)
        evaluation = _random_documents(random.Random(8), 10)
        assert model.predict_many(evaluation) == \
            [model.predict(features) for features in evaluation]


class TestFeatureMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_rows_round_trip_the_scalar_dicts(self, seed):
        rng = random.Random(seed)
        documents = _random_documents(rng, 20)
        matrix = FeatureMatrix.from_dicts(documents)
        assert len(matrix) == len(documents)
        assert list(matrix) == documents
        assert matrix[0] == documents[0]
        assert matrix[-1] == documents[-1]
        assert matrix[1:3] == documents[1:3]
        # First-occurrence order is preserved, not just dict equality.
        assert [list(row) for row in matrix] == \
            [list(features) for features in documents]

    def test_transform_many_matches_transform(self):
        rng = random.Random(3)
        train = [[rng.choice(VOCABULARY) for _ in range(rng.randint(1, 10))]
                 for _ in range(15)]
        extractor = BagOfWordsExtractor(min_document_frequency=2).fit(train)
        documents = train + [["unseen-token"], []]
        matrix = extractor.transform_many(documents)
        assert matrix.terms == tuple(sorted(extractor.vocabulary))
        assert list(matrix) == [extractor.transform(tokens)
                                for tokens in documents]

    def test_out_of_range_row_raises(self):
        matrix = FeatureMatrix.from_dicts([{"a": 1}])
        with pytest.raises(IndexError):
            matrix[1]


class TestSuiteBatchedScoring:
    @pytest.fixture(scope="class")
    def suite(self, researcher_corpus):
        return AspectClassifierSuite.train_on_corpus(researcher_corpus, seed=3)

    def test_page_assessment_matches_scalar_pair(self, suite, researcher_corpus):
        for page in list(researcher_corpus.iter_pages())[:25]:
            for aspect in researcher_corpus.aspects:
                label, probability = suite.page_assessment(page, aspect)
                assert label == suite.classify_page(page, aspect)
                assert probability == suite.page_probability(page, aspect)

    def test_state_round_trip_preserves_predictions(self, suite, researcher_corpus):
        meta, arrays = suite.to_state()
        restored = AspectClassifierSuite.from_state(meta, arrays)
        pages = list(researcher_corpus.iter_pages())[:10]
        for page in pages:
            for aspect in researcher_corpus.aspects:
                assert restored.page_assessment(page, aspect) == \
                    suite.page_assessment(page, aspect)
        assert [record.accuracy for record in restored.accuracy_report()] == \
            [record.accuracy for record in suite.accuracy_report()]
