"""Tests for the utility solver, including the paper's running examples."""

import numpy as np
import pytest
from scipy import sparse

from repro.graph.random_walk import (
    MODE_PRECISION,
    MODE_RECALL,
    UtilitySolver,
    normalize_columns,
    normalize_rows,
)
from repro.graph.reinforcement import ReinforcementGraphBuilder


def build_snir_graph():
    """The paper's Fig. 2 running example (Marc Snir), without templates."""
    edges = {
        ("q1",): ["p1", "p2", "p3"],     # parallel research
        ("q2",): ["p1", "p2"],           # hpc research
        ("q3",): ["p3", "p4"],           # complexity
        ("q4",): ["p4", "p5", "p6"],     # u illinois
        ("q5",): ["p6"],                 # ibm
    }
    builder = ReinforcementGraphBuilder()
    for query, pages in edges.items():
        for page in pages:
            builder.connect_page_query(page, query)
    return builder.build()


RELEVANT_SNIR = {"p1": 1.0, "p2": 1.0, "p3": 1.0, "p4": 1.0, "p5": 0.0, "p6": 0.0}


def build_ng_graph():
    """The paper's Fig. 6 domain example (Andrew Ng), with templates."""
    builder = ReinforcementGraphBuilder()
    builder.connect_page_query("p7", ("ai", "research"))
    builder.connect_page_query("p7", ("baidu",))
    builder.connect_page_query("p8", ("stanford",))
    builder.connect_page_query("p9", ("stanford",))
    builder.connect_query_template(("ai", "research"), ("<topic>", "research"))
    builder.connect_query_template(("baidu",), ("<institute>",))
    builder.connect_query_template(("stanford",), ("<institute>",))
    return builder.build()


class TestNormalisation:
    def test_normalize_rows_stochastic(self):
        matrix = sparse.csr_matrix(np.array([[1.0, 3.0], [0.0, 0.0], [2.0, 2.0]]))
        normalised = normalize_rows(matrix)
        sums = np.asarray(normalised.sum(axis=1)).ravel()
        assert sums[0] == pytest.approx(1.0)
        assert sums[1] == pytest.approx(0.0)
        assert sums[2] == pytest.approx(1.0)

    def test_normalize_columns_stochastic(self):
        matrix = sparse.csr_matrix(np.array([[1.0, 0.0], [3.0, 0.0]]))
        normalised = normalize_columns(matrix)
        sums = np.asarray(normalised.sum(axis=0)).ravel()
        assert sums[0] == pytest.approx(1.0)
        assert sums[1] == pytest.approx(0.0)


class TestSolverBasics:
    def test_invalid_alpha(self):
        graph = build_snir_graph()
        with pytest.raises(ValueError):
            UtilitySolver(graph, alpha=0.0)
        with pytest.raises(ValueError):
            UtilitySolver(graph, alpha=1.0)

    def test_invalid_mode(self):
        solver = UtilitySolver(build_snir_graph())
        with pytest.raises(ValueError):
            solver.solve("accuracy")

    def test_converges(self):
        solver = UtilitySolver(build_snir_graph(), alpha=0.15)
        result = solver.solve_precision(page_regularization=RELEVANT_SNIR)
        assert result.converged
        assert result.iterations <= 100

    def test_no_regularization_gives_zero_utilities(self):
        solver = UtilitySolver(build_snir_graph())
        result = solver.solve_precision()
        assert np.allclose(result.page_values, 0.0)
        assert np.allclose(result.query_values, 0.0)

    def test_unknown_vertex_returns_zero(self):
        solver = UtilitySolver(build_snir_graph())
        result = solver.solve_precision(page_regularization=RELEVANT_SNIR)
        assert result.page("ghost") == 0.0
        assert result.query(("ghost",)) == 0.0
        assert result.template(("<ghost>",)) == 0.0

    def test_utilities_non_negative_and_bounded(self):
        solver = UtilitySolver(build_snir_graph())
        for mode in (MODE_PRECISION, MODE_RECALL):
            regularization = (RELEVANT_SNIR if mode == MODE_PRECISION else
                              {p: v / 4.0 for p, v in RELEVANT_SNIR.items()})
            result = solver.solve(mode, page_regularization=regularization)
            for values in (result.page_values, result.query_values):
                assert np.all(values >= -1e-12)
                assert np.all(values <= 1.0 + 1e-9)

    def test_dictionary_exports(self):
        solver = UtilitySolver(build_snir_graph())
        result = solver.solve_precision(page_regularization=RELEVANT_SNIR)
        assert set(result.page_utilities()) == set(RELEVANT_SNIR)
        assert len(result.query_utilities()) == 5


class TestSnirRunningExample:
    """Qualitative checks of Fig. 2: precision and recall orderings."""

    def setup_method(self):
        self.solver = UtilitySolver(build_snir_graph(), alpha=0.15)
        self.precision = self.solver.solve_precision(page_regularization=RELEVANT_SNIR)
        recall_reg = {p: (0.25 if v > 0 else 0.0) for p, v in RELEVANT_SNIR.items()}
        self.recall = self.solver.solve_recall(page_regularization=recall_reg)

    def test_precision_prefers_queries_with_only_relevant_pages(self):
        # q1, q2 retrieve only relevant pages; q4 retrieves mostly irrelevant
        # pages; q5 only an irrelevant page.
        assert self.precision.query(("q1",)) > self.precision.query(("q4",))
        assert self.precision.query(("q2",)) > self.precision.query(("q4",))
        assert self.precision.query(("q4",)) > self.precision.query(("q5",))

    def test_relevant_pages_have_higher_precision_than_irrelevant(self):
        assert self.precision.page("p1") > self.precision.page("p6")
        assert self.precision.page("p3") > self.precision.page("p5")

    def test_recall_prefers_queries_covering_more_relevant_pages(self):
        # q1 covers three relevant pages, q2 two, q5 none.
        assert self.recall.query(("q1",)) > self.recall.query(("q2",))
        assert self.recall.query(("q2",)) > self.recall.query(("q5",))

    def test_recall_of_q3_exceeds_q5(self):
        assert self.recall.query(("q3",)) > self.recall.query(("q5",))


class TestNgDomainExample:
    """The paper's Fig. 6 claim: P(t1) > P(t3) and R(t1) < R(t3)."""

    def setup_method(self):
        graph = build_ng_graph()
        self.solver = UtilitySolver(graph, alpha=0.15)
        precision_reg = {"p7": 1.0, "p8": 1.0, "p9": 0.0}
        recall_reg = {"p7": 0.5, "p8": 0.5, "p9": 0.0}
        self.precision = self.solver.solve_precision(page_regularization=precision_reg)
        self.recall = self.solver.solve_recall(page_regularization=recall_reg)

    def test_topic_research_template_has_higher_precision(self):
        assert self.precision.template(("<topic>", "research")) > \
            self.precision.template(("<institute>",))

    def test_institute_template_has_higher_recall(self):
        assert self.recall.template(("<institute>",)) > \
            self.recall.template(("<topic>", "research"))


class TestRegularizationLimit:
    def test_high_alpha_pins_pages_to_regularization(self):
        graph = build_snir_graph()
        solver = UtilitySolver(graph, alpha=0.99)
        result = solver.solve_precision(page_regularization=RELEVANT_SNIR)
        for page, value in RELEVANT_SNIR.items():
            assert result.page(page) == pytest.approx(value, abs=0.05)

    def test_template_regularization_lifts_template_queries(self):
        graph = build_ng_graph()
        solver = UtilitySolver(graph, alpha=0.15)
        baseline = solver.solve_precision(page_regularization={"p7": 1.0})
        boosted = solver.solve_precision(
            page_regularization={"p7": 1.0},
            template_regularization={("<institute>",): 5.0})
        assert boosted.query(("stanford",)) > baseline.query(("stanford",))
