"""Tests for the plain-text report formatting."""

from repro.aspects.classifier import AspectAccuracy
from repro.eval.experiments import (
    ComparisonResult,
    Fig9Result,
    Fig10Result,
    Fig11Result,
    Fig14Result,
    HeadlineSummary,
)
from repro.eval.metrics import MetricSeries
from repro.eval.reporting import (
    format_fig09,
    format_fig10,
    format_fig11,
    format_fig12,
    format_fig13,
    format_fig14,
    format_headline,
)
from repro.eval.runner import EfficiencyReport


def _series(method, value):
    return MetricSeries(method=method,
                        precision={2: value, 3: value},
                        recall={2: value, 3: value},
                        f_score={2: value, 3: value})


class TestFormatting:
    def test_fig09_table(self):
        result = Fig9Result(rows_by_domain={
            "researcher": [AspectAccuracy("RESEARCH", 100, 0.95, 80, 20)],
        })
        text = format_fig09(result)
        assert "RESEARCH" in text
        assert "0.95" in text
        assert "[researcher]" in text

    def test_fig10_table(self):
        result = Fig10Result(
            precision_by_domain={"car": {"RND": 0.4, "L2QP": 0.8}},
            recall_by_domain={"car": {"RND": 0.5, "L2QR": 0.9}},
            num_queries=3,
        )
        text = format_fig10(result)
        assert "L2QP" in text and "L2QR" in text
        assert "0.800" in text

    def test_fig11_table(self):
        result = Fig11Result(
            precision_by_domain={"researcher": {0.0: 0.3, 1.0: 0.7}},
            recall_by_domain={"researcher": {0.0: 0.4, 1.0: 0.8}},
            fractions=(0.0, 1.0),
        )
        text = format_fig11(result)
        assert "0%" in text and "100%" in text

    def test_fig12_and_fig13_tables(self):
        result = ComparisonResult(
            series_by_domain={"researcher": {"L2QP": _series("L2QP", 0.7),
                                             "MQ": _series("MQ", 0.6)}},
            num_queries_list=(2, 3),
        )
        fig12 = format_fig12(result)
        assert "2 queries" in fig12 and "3 queries" in fig12
        fig13 = format_fig13(result)
        assert "F-score" in fig13 or "F-scores" in fig13

    def test_fig14_table(self):
        result = Fig14Result(reports_by_domain={
            "researcher": EfficiencyReport(
                selection_seconds={"L2QP": 0.5, "L2QR": 0.4},
                fetch_seconds=12.0,
                queries_measured={"L2QP": 4, "L2QR": 4}),
        })
        text = format_fig14(result)
        assert "researcher" in text
        assert "~12.0" in text

    def test_headline(self):
        summary = HeadlineSummary(
            l2qbal_f_score=0.58, best_algorithmic_baseline="HR",
            best_algorithmic_f_score=0.50, manual_f_score=0.53,
            improvement_over_algorithmic=0.16, improvement_over_manual=0.10)
        text = format_headline(summary)
        assert "16.0%" in text
        assert "10.0%" in text
        assert "HR" in text
