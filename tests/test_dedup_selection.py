"""Dedup-aware selection wiring: session index, discount, determinism."""

import pytest

from repro.aspects.relevance import AllRelevant
from repro.core.config import L2QConfig
from repro.core.context import CollectiveUtilities
from repro.core.harvester import Harvester
from repro.core.selection import make_selector
from repro.core.session import HarvestSession
from repro.scenarios import make_scenario
from repro.search.engine import SearchEngine
from repro.utils.rng import SeededRandom

from tests.helpers import harvest_signature


@pytest.fixture(scope="module")
def dup_corpus():
    return make_scenario("near-duplicates").corpus_for(
        "researcher", num_entities=8, pages_per_entity=6, seed=9)


def _session(corpus, config):
    entity_id = corpus.entity_ids()[0]
    return HarvestSession(
        corpus=corpus,
        engine=SearchEngine(corpus, top_k=5),
        entity=corpus.get_entity(entity_id),
        aspect="RESEARCH",
        relevance=AllRelevant(),
        config=config,
        rng=SeededRandom(1),
    )


class TestSessionNoveltyIndex:
    def test_disabled_by_default(self, dup_corpus):
        session = _session(dup_corpus, L2QConfig())
        assert session.novelty is None
        assert session.expected_novelty(("anything",)) == 1.0

    def test_enabled_with_penalty(self, dup_corpus):
        session = _session(dup_corpus, L2QConfig(dedup_penalty=0.5))
        assert session.novelty is not None

    def test_index_tracks_added_pages(self, dup_corpus):
        session = _session(dup_corpus, L2QConfig(dedup_penalty=0.5))
        pages = dup_corpus.pages_of(session.entity.entity_id)[:2]
        session.add_pages(pages)
        assert len(session.novelty.index) == 2
        # Re-adding must not grow the index (same contract as candidates).
        session.add_pages(pages)
        assert len(session.novelty.index) == 2

    def test_gathered_postings_score_zero_novelty(self, dup_corpus):
        session = _session(dup_corpus, L2QConfig(dedup_penalty=0.5))
        pages = dup_corpus.pages_of(session.entity.entity_id)
        session.add_pages(pages)
        query = tuple(pages[0].tokens[:1])
        assert session.expected_novelty(query) == 0.0


class TestCollectiveDiscount:
    def _collective(self):
        return CollectiveUtilities(query=("q",), collective_recall=0.6,
                                   collective_recall_all=0.8)

    def test_full_novelty_is_identity(self):
        collective = self._collective()
        discounted = collective.discounted(expected_novelty=1.0, penalty=0.7)
        assert discounted.collective_recall == collective.collective_recall
        assert discounted.collective_precision == collective.collective_precision

    def test_zero_penalty_is_identity(self):
        collective = self._collective()
        discounted = collective.discounted(expected_novelty=0.0, penalty=0.0)
        assert discounted.collective_recall == collective.collective_recall

    def test_fully_redundant_query_fully_discounted(self):
        discounted = self._collective().discounted(expected_novelty=0.0,
                                                   penalty=1.0)
        assert discounted.collective_recall == 0.0
        assert discounted.collective_precision == 0.0
        assert discounted.balanced == 0.0

    def test_precision_and_recall_shrink_proportionally(self):
        collective = self._collective()
        discounted = collective.discounted(expected_novelty=0.5, penalty=0.5)
        factor = 1.0 - 0.5 * 0.5
        assert discounted.collective_recall == pytest.approx(
            collective.collective_recall * factor)
        assert discounted.collective_precision == pytest.approx(
            collective.collective_precision * factor)
        # The Y* denominator is untouched — only the target-aspect recall
        # carries the redundancy discount.
        assert discounted.collective_recall_all == collective.collective_recall_all


class TestPenalisedHarvestDeterminism:
    @pytest.mark.parametrize("penalty", [0.0, 0.5])
    def test_same_penalty_reproduces_bit_for_bit(self, dup_corpus, penalty):
        signatures = []
        for _ in range(2):
            config = L2QConfig(dedup_penalty=penalty)
            engine = SearchEngine(dup_corpus, top_k=5)
            harvester = Harvester(dup_corpus, engine, config)
            entity_id = dup_corpus.entity_ids()[0]
            result = harvester.harvest(entity_id, "RESEARCH",
                                       make_selector("L2QBAL", config),
                                       AllRelevant(), num_queries=3)
            signatures.append(harvest_signature(result))
        assert signatures[0] == signatures[1]

    def test_explicit_zero_penalty_matches_default_config(self, dup_corpus):
        signatures = []
        for config in (L2QConfig(), L2QConfig(dedup_penalty=0.0)):
            engine = SearchEngine(dup_corpus, top_k=5)
            harvester = Harvester(dup_corpus, engine, config)
            entity_id = dup_corpus.entity_ids()[0]
            result = harvester.harvest(entity_id, "RESEARCH",
                                       make_selector("L2QBAL", config),
                                       AllRelevant(), num_queries=3)
            signatures.append(harvest_signature(result))
        assert signatures[0] == signatures[1]
