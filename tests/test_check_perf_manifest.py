"""The perf gate script: synthetic regressions must fail, noise must not."""

import io
import json

import pytest

from benchmarks.check_perf_manifest import DEFAULT_TOLERANCE, compare, main


def _manifest(pages_per_second_by_backend):
    return {
        "schema": "BENCH_manifest/v1",
        "entries": [
            {"source": "BENCH_harvest.json", "benchmark": "harvest",
             "kind": "backend-throughput", "scale": "smoke",
             "backend": backend, "method": None, "versions": {},
             "wall_seconds": 1.0, "pages_per_second": pages,
             "speedup_vs_serial": 1.0, "metrics": {}}
            for backend, pages in pages_per_second_by_backend.items()
        ],
    }


def _write(path, manifest):
    path.write_text(json.dumps(manifest), encoding="utf-8")
    return path


class TestCompare:
    def test_no_regression_within_tolerance(self):
        baseline = _manifest({"serial": 100.0, "process": 200.0})
        fresh = _manifest({"serial": 80.0, "process": 150.0})  # -20% / -25%
        out = io.StringIO()
        assert compare(fresh, baseline, tolerance=0.5, out=out) == 0
        assert "REGRESSED" not in out.getvalue()

    def test_regression_beyond_tolerance_is_counted(self):
        baseline = _manifest({"serial": 100.0, "process": 200.0})
        fresh = _manifest({"serial": 100.0, "process": 40.0})  # -80%
        out = io.StringIO()
        assert compare(fresh, baseline, tolerance=0.5, out=out) == 1
        text = out.getvalue()
        assert "REGRESSED" in text
        assert "harvest/process" in text

    def test_faster_is_never_flagged(self):
        baseline = _manifest({"serial": 100.0})
        fresh = _manifest({"serial": 500.0})
        assert compare(fresh, baseline, tolerance=0.5, out=io.StringIO()) == 0

    def test_new_backend_is_a_note_not_a_failure(self):
        baseline = _manifest({"serial": 100.0})
        fresh = _manifest({"serial": 100.0, "fresh-only": 10.0})
        out = io.StringIO()
        assert compare(fresh, baseline, tolerance=0.5, out=out) == 0
        assert "fresh-only is new" in out.getvalue()

    def test_disappeared_backend_is_a_regression(self):
        baseline = _manifest({"serial": 100.0, "gone": 50.0})
        fresh = _manifest({"serial": 100.0})
        out = io.StringIO()
        assert compare(fresh, baseline, tolerance=0.5, out=out) == 1
        assert "gone disappeared" in out.getvalue()

    def test_collapsed_throughput_is_a_regression_not_skipped(self):
        # The catastrophic case the gate exists for: a backend that
        # gathered nothing reports 0.0 (or null) pages/sec — that must
        # fail, not be skipped as unmeasurable.
        baseline = _manifest({"serial": 100.0, "process": 200.0})
        for collapsed in (0.0, None):
            fresh = _manifest({"serial": 100.0, "process": collapsed})
            out = io.StringIO()
            assert compare(fresh, baseline, tolerance=0.5, out=out) == 1
            assert "COLLAPSED" in out.getvalue()

    def test_unmeasurable_baseline_is_skipped(self):
        baseline = _manifest({"serial": None})
        fresh = _manifest({"serial": 100.0})
        out = io.StringIO()
        assert compare(fresh, baseline, tolerance=0.5, out=out) == 0
        assert "skipped" in out.getvalue()


class TestMain:
    def test_exit_1_on_synthetic_regression(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json",
                          _manifest({"serial": 100.0}))
        fresh = _write(tmp_path / "fresh.json", _manifest({"serial": 10.0}))
        assert main(["--fresh", str(fresh), "--baseline", str(baseline)]) == 1

    def test_warn_only_restores_exit_0(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json",
                          _manifest({"serial": 100.0}))
        fresh = _write(tmp_path / "fresh.json", _manifest({"serial": 10.0}))
        assert main(["--fresh", str(fresh), "--baseline", str(baseline),
                     "--warn-only"]) == 0

    def test_within_tolerance_exits_0(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json",
                          _manifest({"serial": 100.0}))
        fresh = _write(tmp_path / "fresh.json", _manifest({"serial": 60.0}))
        assert main(["--fresh", str(fresh), "--baseline", str(baseline)]) == 0

    def test_custom_tolerance(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json",
                          _manifest({"serial": 100.0}))
        fresh = _write(tmp_path / "fresh.json", _manifest({"serial": 89.0}))
        assert main(["--fresh", str(fresh), "--baseline", str(baseline),
                     "--tolerance", "0.1"]) == 1

    def test_missing_files_are_not_failures(self, tmp_path):
        fresh = _write(tmp_path / "fresh.json", _manifest({"serial": 10.0}))
        assert main(["--fresh", str(tmp_path / "absent.json"),
                     "--baseline", str(fresh)]) == 0
        assert main(["--fresh", str(fresh),
                     "--baseline", str(tmp_path / "absent.json")]) == 0

    def test_documented_tolerance_is_generous(self):
        # The tolerance exists to catch order-of-magnitude regressions
        # across different machines, not jitter; keep it documented and
        # generous.
        assert DEFAULT_TOLERANCE == pytest.approx(0.5)
